#include "graph/csr_format.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_io.h"
#include "query/graph_session.h"
#include "service/wire.h"
#include "tests/test_util.h"
#include "util/crc32.h"
#include "util/random.h"

namespace ugs {
namespace {

std::span<const std::uint8_t> AsBytes(const std::string& image) {
  return {reinterpret_cast<const std::uint8_t*>(image.data()), image.size()};
}

Status Validate(const std::string& image, CsrOpenOptions options = {}) {
  CsrArrays arrays;
  CsrFileInfo info;
  return ValidateCsrImage(AsBytes(image), options, &arrays, &info);
}

/// A moderately irregular graph exercising isolated vertices, hubs, and
/// varied probabilities.
UncertainGraph MixedGraph() {
  return UncertainGraph::FromEdges(9, {{0, 1, 0.25},
                                       {0, 2, 1.0},
                                       {0, 7, 0.5},
                                       {1, 2, 0.125},
                                       {2, 3, 0.75},
                                       {3, 4, 0.0625},
                                       {4, 7, 0.9375},
                                       {5, 7, 0.3125}});
  // Vertices 6 and 8 are isolated.
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/csrtest_" + name;
}

TEST(Crc32Test, MatchesIeeeCheckValue) {
  // The standard CRC-32 check value: CRC("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(reinterpret_cast<const std::uint8_t*>("123456789"), 9),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(CsrFileImageTest, DeterministicAndAligned) {
  const UncertainGraph graph = MixedGraph();
  const std::string image = CsrFileImage(graph);
  EXPECT_EQ(image, CsrFileImage(graph));

  CsrArrays arrays;
  CsrFileInfo info;
  ASSERT_TRUE(ValidateCsrImage(AsBytes(image), {}, &arrays, &info).ok());
  EXPECT_EQ(info.version, kCsrVersion);
  EXPECT_EQ(info.flags, 0u);
  EXPECT_EQ(info.num_vertices, 9u);
  EXPECT_EQ(info.num_edges, 8u);
  EXPECT_EQ(info.file_size, image.size());
  for (int s = 0; s < kCsrNumSections; ++s) {
    EXPECT_EQ(info.sections[s].offset % kCsrSectionAlign, 0u)
        << CsrSectionName(static_cast<CsrSection>(s));
  }
  // The validated view aliases the image, bit-identical to the source.
  const CsrArrays source = graph.csr_arrays();
  ASSERT_EQ(arrays.edges.size(), source.edges.size());
  EXPECT_EQ(std::memcmp(arrays.edges.data(), source.edges.data(),
                        source.edges.size_bytes()),
            0);
  ASSERT_EQ(arrays.adjacency.size(), source.adjacency.size());
  EXPECT_EQ(std::memcmp(arrays.adjacency.data(), source.adjacency.data(),
                        source.adjacency.size_bytes()),
            0);
}

TEST(CsrFileImageTest, EmptyGraphRoundTrips) {
  const std::string image = CsrFileImage(UncertainGraph());
  CsrArrays arrays;
  ASSERT_TRUE(ValidateCsrImage(AsBytes(image), {}, &arrays, nullptr).ok());
  EXPECT_TRUE(arrays.edges.empty());
  EXPECT_TRUE(arrays.expected_degrees.empty());
}

TEST(CsrWriteReadTest, RoundTripsThroughDisk) {
  const UncertainGraph graph = MixedGraph();
  const std::string path = TempPath("roundtrip.ugsc");
  ASSERT_TRUE(WriteCsrGraph(graph, path).ok());

  Result<MappedGraph> mapped = MappedGraph::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const UncertainGraph& view = mapped->graph();
  EXPECT_TRUE(view.is_view());
  EXPECT_EQ(view.external_bytes(), mapped->mapped_bytes());
  EXPECT_EQ(view.num_vertices(), graph.num_vertices());
  EXPECT_EQ(view.num_edges(), graph.num_edges());

  // Bit-identical arrays, working adjacency, and a sound FindEdge.
  const CsrArrays a = graph.csr_arrays();
  const CsrArrays b = view.csr_arrays();
  EXPECT_EQ(std::memcmp(b.edges.data(), a.edges.data(), a.edges.size_bytes()),
            0);
  EXPECT_EQ(std::memcmp(b.expected_degrees.data(), a.expected_degrees.data(),
                        a.expected_degrees.size_bytes()),
            0);
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    ASSERT_EQ(view.Degree(u), graph.Degree(u)) << "vertex " << u;
  }
  for (const UncertainEdge& edge : graph.edges()) {
    EXPECT_NE(view.FindEdge(edge.u, edge.v), kInvalidEdge);
    EXPECT_NE(view.FindEdge(edge.v, edge.u), kInvalidEdge);
  }
  EXPECT_EQ(view.FindEdge(6, 8), kInvalidEdge);
}

TEST(CsrWriteReadTest, GraphOutlivesMappedGraphHandle) {
  const std::string path = TempPath("outlive.ugsc");
  ASSERT_TRUE(WriteCsrGraph(testing_util::PaperFigure2Graph(), path).ok());
  UncertainGraph view = [&] {
    Result<MappedGraph> mapped = MappedGraph::Open(path);
    EXPECT_TRUE(mapped.ok());
    return std::move(*mapped).TakeGraph();
  }();
  // The mapping is pinned by the view itself; reads stay valid after the
  // MappedGraph handle died (ASan would flag a stale mapping here).
  EXPECT_EQ(view.num_edges(), 5u);
  EXPECT_DOUBLE_EQ(view.edges()[0].p, 0.4);
}

TEST(CsrWriteReadTest, CopyOfViewMaterializesToOwnedGraph) {
  const std::string path = TempPath("materialize.ugsc");
  ASSERT_TRUE(WriteCsrGraph(MixedGraph(), path).ok());
  Result<MappedGraph> mapped = MappedGraph::Open(path);
  ASSERT_TRUE(mapped.ok());
  UncertainGraph copy(mapped->graph());
  EXPECT_FALSE(copy.is_view());
  EXPECT_EQ(copy.external_bytes(), 0u);
  const CsrArrays a = mapped->graph().csr_arrays();
  const CsrArrays b = copy.csr_arrays();
  EXPECT_NE(static_cast<const void*>(b.edges.data()),
            static_cast<const void*>(a.edges.data()));
  EXPECT_EQ(std::memcmp(b.edges.data(), a.edges.data(), a.edges.size_bytes()),
            0);
}

TEST(CsrOpenErrorsTest, MissingFileIsIOError) {
  Result<MappedGraph> mapped = MappedGraph::Open(TempPath("nope.ugsc"));
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kIOError);
}

TEST(CsrOpenErrorsTest, EveryPrefixTruncationIsOutOfRange) {
  const std::string image = CsrFileImage(testing_util::PaperFigure2Graph());
  for (std::size_t len = 0; len < image.size(); ++len) {
    const Status status = Validate(image.substr(0, len));
    ASSERT_FALSE(status.ok()) << "prefix " << len;
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange)
        << "prefix " << len << ": " << status.ToString();
  }
}

TEST(CsrOpenErrorsTest, TruncatedFileOnDiskIsOutOfRange) {
  const std::string image = CsrFileImage(MixedGraph());
  const std::string path = TempPath("truncated.ugsc");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(image.data(), 1, image.size() - 17, f);
  std::fclose(f);
  Result<MappedGraph> mapped = MappedGraph::Open(path);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kOutOfRange);
}

TEST(CsrOpenErrorsTest, TrailingGarbageIsInvalidArgument) {
  std::string image = CsrFileImage(MixedGraph());
  image.push_back('\0');
  const Status status = Validate(image);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CsrOpenErrorsTest, BadMagicIsInvalidArgument) {
  std::string image = CsrFileImage(MixedGraph());
  image[0] = 'X';
  EXPECT_EQ(Validate(image).code(), StatusCode::kInvalidArgument);
}

TEST(CsrOpenErrorsTest, ByteSwappedMagicIsFailedPrecondition) {
  // A big-endian writer would store the magic byte-swapped; that must be
  // diagnosed as an endianness mismatch, not generic corruption.
  std::string image = CsrFileImage(MixedGraph());
  std::swap(image[0], image[3]);
  std::swap(image[1], image[2]);
  const Status status = Validate(image);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(CsrOpenErrorsTest, FutureVersionIsFailedPrecondition) {
  std::string image = CsrFileImage(MixedGraph());
  image[4] = static_cast<char>(kCsrVersion + 1);
  const Status status = Validate(image);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(CsrOpenErrorsTest, UnknownFlagsAreFailedPrecondition) {
  std::string image = CsrFileImage(MixedGraph());
  image[6] = 0x01;
  const Status status = Validate(image);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(CsrOpenErrorsTest, HeaderCorruptionIsInvalidArgument) {
  // Flip a count byte: the header CRC catches it before any section read.
  std::string image = CsrFileImage(MixedGraph());
  image[8] = static_cast<char>(image[8] ^ 0x40);
  EXPECT_EQ(Validate(image).code(), StatusCode::kInvalidArgument);
}

TEST(CsrOpenErrorsTest, PerSectionCorruptionNamesTheSection) {
  const std::string image = CsrFileImage(MixedGraph());
  CsrArrays arrays;
  CsrFileInfo info;
  ASSERT_TRUE(ValidateCsrImage(AsBytes(image), {}, &arrays, &info).ok());
  for (int s = 0; s < kCsrNumSections; ++s) {
    const CsrSectionInfo& section = info.sections[s];
    ASSERT_GT(section.length, 0u);
    std::string corrupt = image;
    const std::size_t victim = section.offset + section.length / 2;
    corrupt[victim] = static_cast<char>(corrupt[victim] ^ 0x01);
    const Status status = Validate(corrupt);
    ASSERT_FALSE(status.ok()) << CsrSectionName(static_cast<CsrSection>(s));
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.ToString().find(
                  CsrSectionName(static_cast<CsrSection>(s))),
              std::string::npos)
        << status.ToString();
  }
}

TEST(CsrOpenErrorsTest, StructuralSweepCatchesWhatChecksumsAreOff) {
  // With checksums disabled the structural sweep is the last line of
  // defense: corrupt an adjacency neighbor to an out-of-range vertex.
  const std::string image = CsrFileImage(MixedGraph());
  CsrArrays arrays;
  CsrFileInfo info;
  ASSERT_TRUE(ValidateCsrImage(AsBytes(image), {}, &arrays, &info).ok());
  std::string corrupt = image;
  const std::size_t adjacency_off =
      info.sections[static_cast<int>(CsrSection::kAdjacency)].offset;
  const std::uint32_t bogus = 0xFFFFFFFFu;
  std::memcpy(corrupt.data() + adjacency_off, &bogus, sizeof(bogus));
  const CsrOpenOptions no_crc{.verify_checksums = false,
                              .validate_structure = true};
  const Status status = Validate(corrupt, no_crc);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(CsrOpenErrorsTest, CorruptOpenNeverSucceedsThroughGraphSession) {
  const std::string path = TempPath("session_corrupt.ugsc");
  std::string image = CsrFileImage(MixedGraph());
  image[image.size() / 2] =
      static_cast<char>(image[image.size() / 2] ^ 0x10);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  Result<std::unique_ptr<GraphSession>> session = GraphSession::Open(path);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

/// The tentpole acceptance property: text -> pack -> mmap -> every query
/// kind, bit-identical to the text-parsed graph at 1/2/8 threads.
class CsrQueryEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(271828);
    std::vector<UncertainEdge> edges;
    const std::size_t n = 60;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.Uniform(0.0, 1.0) < 0.08) {
          edges.push_back({u, v, 0.05 + 0.9 * rng.Uniform(0.0, 1.0)});
        }
      }
    }
    graph_ = UncertainGraph::FromEdges(n, std::move(edges));
    text_path_ = TempPath("equiv.txt");
    ugsc_path_ = TempPath("equiv.ugsc");
    ASSERT_TRUE(SaveEdgeList(graph_, text_path_).ok());
    ASSERT_TRUE(WriteCsrGraph(graph_, ugsc_path_).ok());
  }

  static std::vector<QueryRequest> Requests() {
    std::vector<QueryRequest> requests;
    for (const char* name :
         {"reliability", "connectivity", "shortest-path", "pagerank",
          "clustering", "knn", "most-probable-path"}) {
      QueryRequest request;
      request.query = name;
      request.pairs = {{0, 7}, {3, 41}, {12, 55}};
      request.sources = {0, 9, 33};
      request.k = 4;
      request.num_samples = 64;
      request.seed = 20260807;
      requests.push_back(std::move(request));
    }
    return requests;
  }

  UncertainGraph graph_;
  std::string text_path_;
  std::string ugsc_path_;
};

TEST_F(CsrQueryEquivalenceTest, MappedQueriesBitIdenticalAcrossThreads) {
  for (int threads : {1, 2, 8}) {
    GraphSessionOptions options;
    options.engine.num_threads = threads;
    Result<std::unique_ptr<GraphSession>> text_session =
        GraphSession::Open(text_path_, options);
    ASSERT_TRUE(text_session.ok()) << text_session.status().ToString();
    Result<std::unique_ptr<GraphSession>> mmap_session =
        GraphSession::Open(ugsc_path_, options);
    ASSERT_TRUE(mmap_session.ok()) << mmap_session.status().ToString();
    EXPECT_FALSE((*text_session)->graph().is_view());
    EXPECT_TRUE((*mmap_session)->graph().is_view());

    for (const QueryRequest& request : Requests()) {
      Result<QueryResult> from_text = (*text_session)->Run(request);
      Result<QueryResult> from_mmap = (*mmap_session)->Run(request);
      ASSERT_TRUE(from_text.ok())
          << request.query << ": " << from_text.status().ToString();
      ASSERT_TRUE(from_mmap.ok())
          << request.query << ": " << from_mmap.status().ToString();
      EXPECT_TRUE(PayloadEquals(*from_text, *from_mmap))
          << request.query << " at " << threads << " threads diverged:\n"
          << ResultToJson(*from_text, /*include_timing=*/false) << "\nvs\n"
          << ResultToJson(*from_mmap, /*include_timing=*/false);
      EXPECT_EQ(ResultToJson(*from_text, /*include_timing=*/false),
                ResultToJson(*from_mmap, /*include_timing=*/false));
    }
  }
}

}  // namespace
}  // namespace ugs
