#include "sparsify/emd.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "sparsify/backbone.h"
#include "tests/test_util.h"

namespace ugs {
namespace {

using testing_util::PaperFigure2Backbone;
using testing_util::PaperFigure2Graph;

constexpr DiscrepancyType kAbs = DiscrepancyType::kAbsolute;

TEST(EmdPrimitivesTest, CandidateProbabilityFullStepAtH1) {
  UncertainGraph g = PaperFigure2Graph();
  SparseState state(g, PaperFigure2Backbone());
  state.RemoveEdge(2);  // Remove (u1,u4): deltas u1 = 0.8, u4 = 0.2.
  // Candidate (u1,u2): step = (0.8 + 0.4)/2 = 0.6.
  EXPECT_NEAR(CandidateProbability(state, 0, 1.0, kAbs), 0.6, 1e-12);
  // Candidate (u1,u4) itself: step = (0.8 + 0.2)/2 = 0.5.
  EXPECT_NEAR(CandidateProbability(state, 2, 1.0, kAbs), 0.5, 1e-12);
  // Candidate (u1,u3): step = (0.8 + 0.2)/2 = 0.5.
  EXPECT_NEAR(CandidateProbability(state, 1, 1.0, kAbs), 0.5, 1e-12);
}

TEST(EmdPrimitivesTest, CandidateProbabilityIgnoresH) {
  // Insertions carry the full Eq.-(9) optimum regardless of h: the swap
  // replaces the removed edge's probability mass (see emd.cc).
  UncertainGraph g = PaperFigure2Graph();
  SparseState state(g, PaperFigure2Backbone());
  state.RemoveEdge(2);
  EXPECT_NEAR(CandidateProbability(state, 0, 0.1, kAbs), 0.6, 1e-12);
}

TEST(EmdPrimitivesTest, InsertionGainMatchesQuadraticForm) {
  UncertainGraph g = PaperFigure2Graph();
  SparseState state(g, PaperFigure2Backbone());
  state.RemoveEdge(2);
  // gain(e, w) = du^2 - (du - w)^2 + dv^2 - (dv - w)^2.
  // For (u1,u2) at w = 0.6: 0.64 - 0.04 + 0.16 - 0.04 = 0.72.
  EXPECT_NEAR(InsertionGain(state, 0, 0.6, kAbs), 0.72, 1e-12);
  // For (u1,u4) at w = 0.5: 0.64 - 0.09 + 0.04 - 0.09 = 0.50.
  EXPECT_NEAR(InsertionGain(state, 2, 0.5, kAbs), 0.50, 1e-12);
  // The highest-gain edge is (u1,u2) -- the choice the paper's Figure 3
  // walk-through makes in its first E-phase iteration.
  EXPECT_GT(InsertionGain(state, 0, 0.6, kAbs),
            InsertionGain(state, 2, 0.5, kAbs));
  EXPECT_GT(InsertionGain(state, 0, 0.6, kAbs),
            InsertionGain(state, 1, 0.5, kAbs));
}

TEST(EmdTest, ReproducesPaperFigure3FinalState) {
  // The paper's Figure 3 ends with backbone {(u1,u2), (u1,u4), (u3,u4)}
  // and M-phase probabilities 0.55 / 0.2 / 0.55, giving D1 = 0.01,
  // Delta_1 = 0.2 and entropy ~2.7 bits.
  UncertainGraph g = PaperFigure2Graph();
  SparseState state(g, PaperFigure2Backbone());
  EmdOptions options;
  options.h = 1.0;
  options.tolerance = 1e-12;
  options.max_iterations = 20;
  options.m_phase.max_sweeps = 500;
  options.m_phase.tolerance = 1e-14;
  EmdStats stats = RunEmd(&state, options);

  std::vector<EdgeId> backbone = state.BackboneEdges();
  EXPECT_EQ(backbone, (std::vector<EdgeId>{0, 2, 4}));
  EXPECT_NEAR(state.Probability(0), 0.55, 1e-3);  // (u1,u2).
  EXPECT_NEAR(state.Probability(2), 0.20, 1e-3);  // (u1,u4).
  EXPECT_NEAR(state.Probability(4), 0.55, 1e-3);  // (u3,u4).
  EXPECT_NEAR(stats.final_objective, 0.01, 1e-3);
  EXPECT_NEAR(state.SumAbsDelta(kAbs), 0.2, 1e-3);
  EXPECT_NEAR(state.BuildGraph().EntropyBits(), 2.7, 0.02);
}

TEST(EmdTest, BackboneSizeInvariant) {
  Rng rng(7);
  UncertainGraph g = GenerateErdosRenyi(
      80, 400, ProbabilityDistribution::Uniform(0.05, 0.5), &rng);
  BackboneOptions bopt;
  auto backbone = BuildBackbone(g, 0.4, bopt, &rng);
  ASSERT_TRUE(backbone.ok());
  SparseState state(g, backbone.value());
  std::size_t before = state.BackboneSize();
  EmdOptions options;
  RunEmd(&state, options);
  EXPECT_EQ(state.BackboneSize(), before);
}

TEST(EmdTest, ImprovesObjective) {
  Rng rng(8);
  UncertainGraph g = GenerateErdosRenyi(
      100, 600, ProbabilityDistribution::Uniform(0.05, 0.4), &rng);
  BackboneOptions bopt;
  auto backbone = BuildBackbone(g, 0.3, bopt, &rng);
  ASSERT_TRUE(backbone.ok());
  SparseState state(g, backbone.value());
  EmdOptions options;
  options.h = 0.5;
  EmdStats stats = RunEmd(&state, options);
  EXPECT_LT(stats.final_objective, stats.initial_objective);
}

TEST(EmdTest, AtLeastAsGoodAsGdbOnSameBackbone) {
  // EMD runs GDB as its M-phase, so with identical settings its final D1
  // cannot exceed plain GDB's (it may swap its way lower).
  Rng rng(9);
  UncertainGraph g = GenerateErdosRenyi(
      120, 700, ProbabilityDistribution::Uniform(0.05, 0.4), &rng);
  BackboneOptions bopt;
  Rng rng_backbone(10);
  auto backbone = BuildBackbone(g, 0.35, bopt, &rng_backbone);
  ASSERT_TRUE(backbone.ok());

  SparseState gdb_state(g, backbone.value());
  GdbOptions gdb;
  gdb.h = 0.5;
  gdb.max_sweeps = 100;
  RunGdb(&gdb_state, gdb);

  SparseState emd_state(g, backbone.value());
  EmdOptions emd;
  emd.h = 0.5;
  emd.max_iterations = 10;
  emd.m_phase.max_sweeps = 100;
  RunEmd(&emd_state, emd);

  EXPECT_LE(emd_state.ObjectiveD1(kAbs),
            gdb_state.ObjectiveD1(kAbs) + 1e-9);
}

TEST(EmdTest, SwapsAreCounted) {
  UncertainGraph g = PaperFigure2Graph();
  SparseState state(g, PaperFigure2Backbone());
  EmdOptions options;
  options.h = 1.0;
  EmdStats stats = RunEmd(&state, options);
  // Figure 3: (u1,u4) is swapped for (u1,u2) in iteration 1, then
  // (u2,u4) is swapped for (u1,u4) in iteration 2 of the E-phase.
  EXPECT_GE(stats.swaps, 2u);
}

TEST(EmdTest, RelativeVariantRuns) {
  Rng rng(11);
  UncertainGraph g = GenerateErdosRenyi(
      60, 300, ProbabilityDistribution::Uniform(0.1, 0.6), &rng);
  BackboneOptions bopt;
  auto backbone = BuildBackbone(g, 0.4, bopt, &rng);
  ASSERT_TRUE(backbone.ok());
  SparseState state(g, backbone.value());
  EmdOptions options;
  options.discrepancy = DiscrepancyType::kRelative;
  EmdStats stats = RunEmd(&state, options);
  EXPECT_LE(stats.final_objective, stats.initial_objective + 1e-12);
  // Probabilities stay in range.
  for (EdgeId e : state.BackboneEdges()) {
    EXPECT_GE(state.Probability(e), 0.0);
    EXPECT_LE(state.Probability(e), 1.0);
  }
}

TEST(EmdTest, ConvergesAndStops) {
  UncertainGraph g = PaperFigure2Graph();
  SparseState state(g, PaperFigure2Backbone());
  EmdOptions options;
  options.h = 1.0;
  options.max_iterations = 50;
  EmdStats stats = RunEmd(&state, options);
  EXPECT_LT(stats.iterations, 50);
}

}  // namespace
}  // namespace ugs
