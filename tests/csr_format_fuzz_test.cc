// Mutation fuzzing of the .ugsc validator: every mutated image -- byte
// flips, truncations, extensions, header and section-table rewrites --
// must come back as a typed Status, never a crash, OOB read (ASan-run in
// CI's fuzz-smoke job), or structurally unsafe graph. Deterministic: a
// fixed seed drives the corpus, so a failure reproduces by iteration
// index. UGS_FUZZ_ITERS scales the iteration budget (default 2000).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/csr_format.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ugs {
namespace {

int FuzzIters() {
  const char* env = std::getenv("UGS_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    const int iters = std::atoi(env);
    if (iters > 0) return iters;
  }
  return 2000;
}

std::span<const std::uint8_t> AsBytes(const std::string& image) {
  return {reinterpret_cast<const std::uint8_t*>(image.data()), image.size()};
}

/// A small but fully-featured seed image: hubs, isolated vertices, all
/// four sections non-empty.
std::string SeedImage() {
  Rng rng(0xC5F0);
  std::vector<UncertainEdge> edges;
  const VertexId n = 24;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.Uniform(0.0, 1.0) < 0.2) {
        edges.push_back({u, v, rng.Uniform(0.0, 1.0)});
      }
    }
  }
  return CsrFileImage(UncertainGraph::FromEdges(n + 2, std::move(edges)));
}

/// One random mutation of `seed`; kind diversity is weighted toward the
/// header and section table, where a byte buys the most coverage.
std::string Mutate(const std::string& seed, Rng* rng) {
  std::string image = seed;
  const int kind = static_cast<int>(rng->Uniform(0.0, 6.0));
  auto flip = [&](std::size_t lo, std::size_t hi) {
    if (hi <= lo) return;
    const std::size_t at =
        lo + static_cast<std::size_t>(rng->Uniform(0.0, 1.0) *
                                      static_cast<double>(hi - lo));
    const int bit = static_cast<int>(rng->Uniform(0.0, 8.0));
    image[at] = static_cast<char>(image[at] ^ (1 << (bit & 7)));
  };
  switch (kind) {
    case 0:  // Header flip.
      flip(0, kCsrHeaderBytes);
      break;
    case 1: {  // Section-table field rewrite with a random u64.
      const std::size_t field =
          32 + 8 * static_cast<std::size_t>(rng->Uniform(0.0, 12.0));
      const std::uint64_t value = static_cast<std::uint64_t>(
          rng->Uniform(0.0, 1.0) * 1.8e19);
      std::memcpy(image.data() + field, &value, sizeof(value));
      break;
    }
    case 2:  // Body flip.
      flip(kCsrHeaderBytes, image.size());
      break;
    case 3: {  // Truncate anywhere.
      const std::size_t len = static_cast<std::size_t>(
          rng->Uniform(0.0, 1.0) * static_cast<double>(image.size()));
      image.resize(len);
      break;
    }
    case 4: {  // Extend with junk.
      const std::size_t extra =
          1 + static_cast<std::size_t>(rng->Uniform(0.0, 128.0));
      for (std::size_t i = 0; i < extra; ++i) {
        image.push_back(static_cast<char>(rng->Uniform(0.0, 256.0)));
      }
      break;
    }
    default: {  // A burst of 2-8 flips anywhere.
      const int burst = 2 + static_cast<int>(rng->Uniform(0.0, 7.0));
      for (int i = 0; i < burst; ++i) flip(0, image.size());
      break;
    }
  }
  return image;
}

/// Walks every accessor of a graph the validator accepted; any unsafe
/// index the sweep missed becomes a crash/ASan report right here.
void ExerciseGraph(const UncertainGraph& graph) {
  double checksum = 0.0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    for (const AdjacencyEntry& entry : graph.Neighbors(u)) {
      checksum += graph.edges()[entry.edge].p;
      ASSERT_NE(graph.FindEdge(u, entry.neighbor), kInvalidEdge);
    }
    checksum += graph.ExpectedDegree(u);
  }
  ASSERT_GE(checksum, 0.0);
}

TEST(CsrFormatFuzzTest, MutatedImagesNeverCrashTheValidator) {
  const std::string seed = SeedImage();
  {
    CsrArrays arrays;
    ASSERT_TRUE(ValidateCsrImage(AsBytes(seed), {}, &arrays, nullptr).ok());
  }
  Rng rng(20260807);
  const int iters = FuzzIters();
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < iters; ++i) {
    const std::string image = Mutate(seed, &rng);
    CsrArrays arrays;
    CsrFileInfo info;
    const Status status = ValidateCsrImage(AsBytes(image), {}, &arrays, &info);
    if (!status.ok()) {
      ++rejected;
      continue;
    }
    // Mutations that land in inter-section padding (not checksummed) or
    // cancel out can legitimately still validate; the graph must then be
    // fully safe to traverse.
    ++accepted;
    UncertainGraph view = UncertainGraph::FromCsrView(
        arrays, std::shared_ptr<const void>(), image.size());
    ASSERT_NO_FATAL_FAILURE(ExerciseGraph(view)) << "iteration " << i;
  }
  // The corpus must actually exercise the reject paths; if nearly
  // everything passes, the mutator went soft.
  EXPECT_GT(rejected, iters / 2);
  SUCCEED() << accepted << " accepted / " << rejected << " rejected of "
            << iters;
}

TEST(CsrFormatFuzzTest, MutatedFilesNeverCrashTheOpener) {
  // A bounded on-disk leg so the mmap path (fstat, mapping, unmap on
  // every reject) is exercised under the sanitizers too.
  const std::string seed = SeedImage();
  const std::string path = ::testing::TempDir() + "/csr_fuzz_scratch.ugsc";
  Rng rng(424242);
  const int iters = std::min(FuzzIters(), 200);
  for (int i = 0; i < iters; ++i) {
    const std::string image = Mutate(seed, &rng);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(image.data(), 1, image.size(), f), image.size());
    ASSERT_EQ(std::fclose(f), 0);
    Result<MappedGraph> mapped = MappedGraph::Open(path);
    if (mapped.ok()) {
      ASSERT_NO_FATAL_FAILURE(ExerciseGraph(mapped->graph()))
          << "iteration " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(CsrFormatFuzzTest, ValidationKnobsNeverCrashOnMutants) {
  // checksums-off must still be memory-safe: the structural sweep alone
  // has to reject anything that would index out of bounds.
  const std::string seed = SeedImage();
  Rng rng(7070);
  const CsrOpenOptions no_crc{.verify_checksums = false,
                              .validate_structure = true};
  const int iters = std::min(FuzzIters(), 500);
  for (int i = 0; i < iters; ++i) {
    const std::string image = Mutate(seed, &rng);
    CsrArrays arrays;
    const Status status =
        ValidateCsrImage(AsBytes(image), no_crc, &arrays, nullptr);
    if (status.ok()) {
      UncertainGraph view = UncertainGraph::FromCsrView(
          arrays, std::shared_ptr<const void>(), image.size());
      ASSERT_NO_FATAL_FAILURE(ExerciseGraph(view)) << "iteration " << i;
    }
  }
}

}  // namespace
}  // namespace ugs
