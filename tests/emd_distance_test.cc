#include "metrics/emd_distance.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ugs {
namespace {

TEST(EmpiricalEmdTest, IdenticalSamplesZero) {
  std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(EmpiricalEmd(a, a), 0.0);
}

TEST(EmpiricalEmdTest, PointMassesDistance) {
  // Two unit point masses at distance d have EMD d.
  EXPECT_DOUBLE_EQ(EmpiricalEmd({0.0}, {3.5}), 3.5);
  EXPECT_DOUBLE_EQ(EmpiricalEmd({-1.0}, {1.0}), 2.0);
}

TEST(EmpiricalEmdTest, Symmetry) {
  std::vector<double> a{0.0, 1.0, 5.0};
  std::vector<double> b{2.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(EmpiricalEmd(a, b), EmpiricalEmd(b, a));
}

TEST(EmpiricalEmdTest, TranslationInvariantShift) {
  // Shifting both samples by c leaves EMD unchanged; shifting one by c
  // changes it by at most c (and exactly c for equal-size sets).
  std::vector<double> a{1.0, 2.0, 4.0};
  std::vector<double> b{1.5, 3.0, 3.5};
  double base = EmpiricalEmd(a, b);
  std::vector<double> a_shift, b_shift;
  for (double x : a) a_shift.push_back(x + 10.0);
  for (double x : b) b_shift.push_back(x + 10.0);
  EXPECT_NEAR(EmpiricalEmd(a_shift, b_shift), base, 1e-12);
}

TEST(EmpiricalEmdTest, KnownTwoPointValue) {
  // a = {0, 1}, b = {0, 0}: CDFs differ by 1/2 on [0, 1) -> EMD = 0.5.
  EXPECT_DOUBLE_EQ(EmpiricalEmd({0.0, 1.0}, {0.0, 0.0}), 0.5);
}

TEST(EmpiricalEmdTest, EqualSizeMatchesSortedAssignment) {
  // For equal-size samples, 1D EMD is the mean absolute difference of the
  // sorted sequences.
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b;
    for (int i = 0; i < 17; ++i) {
      a.push_back(rng.Uniform(0.0, 10.0));
      b.push_back(rng.Uniform(0.0, 10.0));
    }
    std::vector<double> sa = a, sb = b;
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    double expected = 0.0;
    for (int i = 0; i < 17; ++i) expected += std::abs(sa[i] - sb[i]);
    expected /= 17.0;
    EXPECT_NEAR(EmpiricalEmd(a, b), expected, 1e-9) << "trial " << trial;
  }
}

TEST(EmpiricalEmdTest, TriangleInequality) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> a, b, c;
    for (int i = 0; i < 9; ++i) {
      a.push_back(rng.Uniform(0.0, 5.0));
      b.push_back(rng.Uniform(0.0, 5.0));
      c.push_back(rng.Uniform(0.0, 5.0));
    }
    EXPECT_LE(EmpiricalEmd(a, b),
              EmpiricalEmd(a, c) + EmpiricalEmd(c, b) + 1e-9);
  }
}

TEST(EmpiricalEmdTest, UnequalSizesSupported) {
  // a = {0} (mass 1 at 0), b = {0, 1} (half mass at each): EMD = 0.5.
  EXPECT_DOUBLE_EQ(EmpiricalEmd({0.0}, {0.0, 1.0}), 0.5);
}

TEST(EmpiricalEmdTest, EmptyInputsGiveZero) {
  EXPECT_DOUBLE_EQ(EmpiricalEmd({}, {1.0}), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalEmd({}, {}), 0.0);
}

TEST(EmpiricalEmdTest, DuplicatesHandled) {
  EXPECT_DOUBLE_EQ(EmpiricalEmd({1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalEmd({1.0, 1.0}, {2.0, 2.0}), 1.0);
}

TEST(MeanUnitEmdTest, AveragesOverUnits) {
  McSamples a, b;
  a.num_units = b.num_units = 2;
  a.num_samples = b.num_samples = 2;
  a.values = {0.0, 5.0, 0.0, 5.0};  // Unit 0: {0,0}; unit 1: {5,5}.
  b.values = {1.0, 5.0, 1.0, 5.0};  // Unit 0: {1,1}; unit 1: {5,5}.
  // Unit 0 EMD = 1, unit 1 EMD = 0 -> mean 0.5.
  EXPECT_DOUBLE_EQ(MeanUnitEmd(a, b), 0.5);
}

TEST(MeanUnitEmdTest, RespectsValidityMasks) {
  McSamples a, b;
  a.num_units = b.num_units = 1;
  a.num_samples = b.num_samples = 2;
  a.values = {2.0, 99.0};
  a.valid = {1, 0};
  b.values = {3.0, 3.0};
  // a's valid samples = {2}, b's = {3, 3} -> EMD = 1.
  EXPECT_DOUBLE_EQ(MeanUnitEmd(a, b), 1.0);
}

}  // namespace
}  // namespace ugs
