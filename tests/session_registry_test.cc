#include "service/session_registry.h"

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph/csr_format.h"
#include "graph/graph_io.h"
#include "service/wire.h"
#include "tests/test_util.h"

namespace ugs {
namespace {

class SessionRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    ASSERT_TRUE(
        SaveEdgeList(testing_util::CompleteK4(0.5), Path("g1")).ok());
    ASSERT_TRUE(
        SaveEdgeList(testing_util::PathGraph(12, 0.4), Path("g2")).ok());
    ASSERT_TRUE(
        SaveEdgeList(testing_util::StarGraph(8, 0.3), Path("g3")).ok());
  }

  std::string Path(const std::string& id) const {
    return dir_ + "/" + Id(id) + ".txt";
  }

  /// Per-test-suite-run unique ids so temp files never collide.
  std::string Id(const std::string& id) const { return "regtest_" + id; }

  SessionRegistryOptions Options(std::size_t max_sessions,
                                 std::size_t max_bytes = 0) const {
    SessionRegistryOptions options;
    options.graph_dir = dir_;
    options.max_sessions = max_sessions;
    options.max_resident_bytes = max_bytes;
    return options;
  }

  std::string dir_;
};

TEST_F(SessionRegistryTest, OpensOnDemandAndCountsHitsAndMisses) {
  SessionRegistry registry(Options(4));
  Result<SessionRegistry::Handle> first = registry.Acquire(Id("g1"));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)->graph().num_vertices(), 4u);
  Result<SessionRegistry::Handle> second = registry.Acquire(Id("g1"));
  ASSERT_TRUE(second.ok());
  // Both pins share one session instance.
  EXPECT_EQ(&**first, &**second);
  RegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.evictions, 0u);
  EXPECT_EQ(registry.resident_sessions(), 1u);
  EXPECT_GT(registry.resident_bytes(), 0u);
}

TEST_F(SessionRegistryTest, MissingGraphFailsTypedAndCounts) {
  SessionRegistry registry(Options(4));
  Result<SessionRegistry::Handle> missing = registry.Acquire("no_such");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(registry.counters().open_failures, 1u);
  EXPECT_EQ(registry.resident_sessions(), 0u);
  // A later retry is a fresh miss, not a cached failure.
  EXPECT_FALSE(registry.Acquire("no_such").ok());
  EXPECT_EQ(registry.counters().misses, 2u);
}

TEST_F(SessionRegistryTest, RejectsPathEscapingIds) {
  SessionRegistry registry(Options(4));
  for (const std::string& id :
       {std::string("../secrets"), std::string("a/b"), std::string("a\\b"),
        std::string("..")}) {
    Result<SessionRegistry::Handle> handle = registry.Acquire(id);
    ASSERT_FALSE(handle.ok()) << id;
    EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument) << id;
  }
  EXPECT_FALSE(registry.Acquire("").ok());
}

TEST_F(SessionRegistryTest, EvictsLeastRecentlyUsedPastEntryBudget) {
  SessionRegistry registry(Options(2));
  ASSERT_TRUE(registry.Acquire(Id("g1")).ok());
  ASSERT_TRUE(registry.Acquire(Id("g2")).ok());
  // Touch g1 so g2 is the LRU entry when g3 arrives.
  ASSERT_TRUE(registry.Acquire(Id("g1")).ok());
  ASSERT_TRUE(registry.Acquire(Id("g3")).ok());
  EXPECT_EQ(registry.counters().evictions, 1u);
  std::vector<std::string> resident = registry.ResidentIds();
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0], Id("g3"));  // MRU first.
  EXPECT_EQ(resident[1], Id("g1"));
  // g2 was evicted: acquiring it again is a miss.
  const std::uint64_t misses_before = registry.counters().misses;
  ASSERT_TRUE(registry.Acquire(Id("g2")).ok());
  EXPECT_EQ(registry.counters().misses, misses_before + 1);
}

TEST_F(SessionRegistryTest, EvictsPastByteBudgetButKeepsNewestEntry) {
  // A byte budget below a single session's footprint: every open evicts
  // everything else but the entry being returned always survives.
  SessionRegistry registry(Options(0, 1));
  Result<SessionRegistry::Handle> g1 = registry.Acquire(Id("g1"));
  ASSERT_TRUE(g1.ok());
  EXPECT_EQ(registry.resident_sessions(), 1u);
  Result<SessionRegistry::Handle> g2 = registry.Acquire(Id("g2"));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(registry.resident_sessions(), 1u);
  EXPECT_EQ(registry.ResidentIds()[0], Id("g2"));
  EXPECT_EQ(registry.counters().evictions, 1u);
}

TEST_F(SessionRegistryTest, PinnedSessionSurvivesEviction) {
  SessionRegistry registry(Options(1));
  Result<SessionRegistry::Handle> pinned = registry.Acquire(Id("g1"));
  ASSERT_TRUE(pinned.ok());
  // Opening g2 with a 1-entry budget evicts g1 while it is pinned.
  ASSERT_TRUE(registry.Acquire(Id("g2")).ok());
  EXPECT_EQ(registry.ResidentIds(), std::vector<std::string>{Id("g2")});
  EXPECT_EQ(registry.counters().evictions, 1u);
  // The pin still works: the session answers queries after eviction.
  QueryRequest request;
  request.query = "connectivity";
  request.num_samples = 16;
  Result<QueryResult> result = (*pinned)->Run(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->has_scalar);
}

TEST_F(SessionRegistryTest, InsertRegistersPrebuiltSessions) {
  SessionRegistry registry(Options(4));
  ASSERT_TRUE(registry
                  .Insert("inmem", std::make_unique<GraphSession>(
                                       testing_util::CompleteK4(0.5)))
                  .ok());
  EXPECT_EQ(registry
                .Insert("inmem", std::make_unique<GraphSession>(
                                     testing_util::CompleteK4(0.5)))
                .code(),
            StatusCode::kFailedPrecondition);
  Result<SessionRegistry::Handle> handle = registry.Acquire("inmem");
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ((*handle)->graph().num_edges(), 6u);
}

TEST_F(SessionRegistryTest,
       ResultsThroughEvictingRegistryMatchDirectSessions) {
  // Acceptance: with eviction active (1-entry budget, 3 graphs cycling),
  // every result served through the registry is bit-identical to a fresh
  // local GraphSession::Run of the same request.
  QueryRequest request;
  request.query = "reliability";
  request.pairs = {{0, 3}};
  request.num_samples = 48;
  request.seed = 21;

  std::vector<QueryResult> direct;
  for (const char* id : {"g1", "g2", "g3"}) {
    Result<std::unique_ptr<GraphSession>> session =
        GraphSession::Open(Path(id));
    ASSERT_TRUE(session.ok());
    Result<QueryResult> result = (*session)->Run(request);
    ASSERT_TRUE(result.ok());
    direct.push_back(*result);
  }

  SessionRegistry registry(Options(1));
  for (int round = 0; round < 2; ++round) {
    for (int g = 0; g < 3; ++g) {
      Result<SessionRegistry::Handle> handle =
          registry.Acquire(Id(std::string("g") + char('1' + g)));
      ASSERT_TRUE(handle.ok());
      Result<QueryResult> result = (*handle)->Run(request);
      ASSERT_TRUE(result.ok());
      EXPECT_TRUE(PayloadEquals(*result, direct[static_cast<std::size_t>(g)]))
          << "round " << round << " graph " << g;
    }
  }
  // Cycling 3 graphs through 1 slot evicts on every switch.
  EXPECT_GE(registry.counters().evictions, 4u);
  EXPECT_EQ(registry.counters().hits, 0u);
  EXPECT_EQ(registry.counters().misses, 6u);
}

TEST_F(SessionRegistryTest, ConcurrentAcquiresShareOneOpen) {
  SessionRegistry registry(Options(4));
  constexpr int kThreads = 8;
  std::vector<const GraphSession*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([this, &registry, &seen, i] {
      Result<SessionRegistry::Handle> handle = registry.Acquire(Id("g2"));
      if (handle.ok()) seen[static_cast<std::size_t>(i)] = &**handle;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(seen[static_cast<std::size_t>(i)], nullptr) << i;
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], seen[0]);
  }
  RegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.misses, 1u);  // Exactly one thread opened the file.
  EXPECT_EQ(counters.hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST_F(SessionRegistryTest, StatsJsonReflectsCounters) {
  SessionRegistry registry(Options(2));
  ASSERT_TRUE(registry.Acquire(Id("g1")).ok());
  ASSERT_TRUE(registry.Acquire(Id("g1")).ok());
  std::string json = registry.StatsJson();
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"misses\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max_sessions\":2"), std::string::npos) << json;
  EXPECT_NE(json.find(Id("g1")), std::string::npos) << json;
}

// --- Binary (.ugsc) graph resolution.

class RegistryCsrTest : public SessionRegistryTest {
 protected:
  void SetUp() override {
    SessionRegistryTest::SetUp();
    // g1 exists in BOTH forms; the packed one must win for the
    // extensionless id. g4 exists only packed.
    graph_ = testing_util::CompleteK4(0.5);
    ASSERT_TRUE(WriteCsrGraph(graph_, UgscPath("g1")).ok());
    ASSERT_TRUE(
        WriteCsrGraph(testing_util::StarGraph(6, 0.7), UgscPath("g4")).ok());
  }

  std::string UgscPath(const std::string& id) const {
    return dir_ + "/" + Id(id) + kCsrExtension;
  }

  UncertainGraph graph_;
};

TEST_F(RegistryCsrTest, PrefersPackedFormForExtensionlessIds) {
  SessionRegistry registry(Options(4));
  Result<SessionRegistry::Handle> handle = registry.Acquire(Id("g1"));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE((*handle)->graph().is_view());
  RegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.opens_mmap, 1u);
  EXPECT_EQ(counters.opens_text, 0u);

  // g2 has no packed form: text fallback, counted on the other side.
  Result<SessionRegistry::Handle> text = registry.Acquire(Id("g2"));
  ASSERT_TRUE(text.ok());
  EXPECT_FALSE((*text)->graph().is_view());
  counters = registry.counters();
  EXPECT_EQ(counters.opens_mmap, 1u);
  EXPECT_EQ(counters.opens_text, 1u);

  std::string json = registry.StatsJson();
  EXPECT_NE(json.find("\"opens_mmap\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"opens_text\":1"), std::string::npos) << json;
}

TEST_F(RegistryCsrTest, ExplicitExtensionNamesExactlyThatFile) {
  SessionRegistry registry(Options(4));
  Result<SessionRegistry::Handle> text =
      registry.Acquire(Id("g1") + ".txt");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_FALSE((*text)->graph().is_view());
  Result<SessionRegistry::Handle> packed =
      registry.Acquire(Id("g1") + kCsrExtension);
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_TRUE((*packed)->graph().is_view());
  RegistryCounters counters = registry.counters();
  EXPECT_EQ(counters.opens_text, 1u);
  EXPECT_EQ(counters.opens_mmap, 1u);
}

TEST_F(RegistryCsrTest, MappedResidentBytesAreTheMappedFileSize) {
  SessionRegistry registry(Options(4));
  Result<SessionRegistry::Handle> handle = registry.Acquire(Id("g4"));
  ASSERT_TRUE(handle.ok());
  Result<MappedGraph> mapped = MappedGraph::Open(UgscPath("g4"));
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(registry.resident_bytes(),
            sizeof(GraphSession) + mapped->mapped_bytes());
  EXPECT_EQ((*handle)->graph().external_bytes(), mapped->mapped_bytes());
}

TEST_F(RegistryCsrTest, CorruptPackedFileFailsTypedInsteadOfTextFallback) {
  // Corrupt g1.ugsc in place. The extensionless id must surface the
  // packed file's typed error, not silently serve the stale g1.txt.
  const std::string path = UgscPath("g1");
  std::string image = CsrFileImage(graph_);
  image[image.size() - 3] = static_cast<char>(image[image.size() - 3] ^ 0x80);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(image.data(), 1, image.size(), f), image.size());
  ASSERT_EQ(std::fclose(f), 0);

  SessionRegistry registry(Options(4));
  Result<SessionRegistry::Handle> handle = registry.Acquire(Id("g1"));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.counters().open_failures, 1u);
  // Restore a valid packed file for any later test reusing the dir.
  ASSERT_TRUE(WriteCsrGraph(graph_, path).ok());
}

TEST_F(RegistryCsrTest, PackedAndTextSessionsAnswerBitIdentically) {
  SessionRegistry registry(Options(4));
  Result<SessionRegistry::Handle> packed = registry.Acquire(Id("g1"));
  Result<SessionRegistry::Handle> text =
      registry.Acquire(Id("g1") + ".txt");
  ASSERT_TRUE(packed.ok());
  ASSERT_TRUE(text.ok());
  QueryRequest request;
  request.query = "reliability";
  request.pairs = {{0, 3}, {1, 2}};
  request.num_samples = 64;
  request.seed = 99;
  Result<QueryResult> a = (*packed)->Run(request);
  Result<QueryResult> b = (*text)->Run(request);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(PayloadEquals(*a, *b));
}

}  // namespace
}  // namespace ugs
