#include "util/timer.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

namespace ugs {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer timer;
  const double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  const double second = timer.ElapsedSeconds();
  EXPECT_GE(second, first);
}

TEST(TimerTest, MeasuresAtLeastTheSleptDuration) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // steady_clock sleeps can only overshoot, never undershoot.
  EXPECT_GE(timer.ElapsedMillis(), 20.0);
}

TEST(TimerTest, ResetRestartsTheStopwatch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double before = timer.ElapsedMillis();
  timer.Reset();
  const double after = timer.ElapsedMillis();
  EXPECT_LT(after, before);
}

TEST(TimerTest, MillisIsSecondsTimesAThousand) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double seconds = timer.ElapsedSeconds();
  const double millis = timer.ElapsedMillis();
  // Two separate clock reads: millis was taken after seconds, so it
  // can only be larger -- but by far less than a millisecond.
  EXPECT_GE(millis, seconds * 1e3);
  EXPECT_LT(millis - seconds * 1e3, 1.0);
}

}  // namespace
}  // namespace ugs
