#include "query/knn.h"

#include <cmath>

#include <gtest/gtest.h>

#include "query/most_probable_path.h"
#include "tests/test_util.h"

namespace ugs {
namespace {

TEST(KnnTest, OrderedByPathProbability) {
  // Star with distinct probabilities: neighbors come back sorted.
  UncertainGraph g = UncertainGraph::FromEdges(
      4, {{0, 1, 0.9}, {0, 2, 0.5}, {0, 3, 0.7}});
  std::vector<KnnResult> knn = MostProbableKnn(g, 0, 3);
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_EQ(knn[0].vertex, 1u);
  EXPECT_EQ(knn[1].vertex, 3u);
  EXPECT_EQ(knn[2].vertex, 2u);
  EXPECT_NEAR(knn[0].path_probability, 0.9, 1e-12);
  EXPECT_NEAR(knn[2].path_probability, 0.5, 1e-12);
}

TEST(KnnTest, MultiHopBeatsWeakDirect) {
  UncertainGraph g = UncertainGraph::FromEdges(
      3, {{0, 1, 0.9}, {1, 2, 0.9}, {0, 2, 0.3}});
  std::vector<KnnResult> knn = MostProbableKnn(g, 0, 2);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].vertex, 1u);
  EXPECT_EQ(knn[1].vertex, 2u);
  EXPECT_NEAR(knn[1].path_probability, 0.81, 1e-12);  // Via vertex 1.
}

TEST(KnnTest, FewerThanKWhenComponentSmall) {
  UncertainGraph g = UncertainGraph::FromEdges(
      5, {{0, 1, 0.5}, {2, 3, 0.5}, {3, 4, 0.5}});
  std::vector<KnnResult> knn = MostProbableKnn(g, 0, 10);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].vertex, 1u);
}

TEST(KnnTest, KZeroIsEmpty) {
  UncertainGraph g = testing_util::CompleteK4(0.5);
  EXPECT_TRUE(MostProbableKnn(g, 0, 0).empty());
}

TEST(KnnTest, AgreesWithFullDijkstra) {
  UncertainGraph g = testing_util::CompleteK4(0.4);
  std::vector<double> all = MostProbablePathProbabilities(g, 1);
  std::vector<KnnResult> knn = MostProbableKnn(g, 1, 3);
  ASSERT_EQ(knn.size(), 3u);
  for (const KnnResult& r : knn) {
    EXPECT_NEAR(r.path_probability, all[r.vertex], 1e-12);
  }
}

TEST(KnnTest, PathGraphSettlesInHopOrder) {
  UncertainGraph g = testing_util::PathGraph(6, 0.8);
  std::vector<KnnResult> knn = MostProbableKnn(g, 0, 5);
  ASSERT_EQ(knn.size(), 5u);
  for (std::size_t i = 0; i < knn.size(); ++i) {
    EXPECT_EQ(knn[i].vertex, static_cast<VertexId>(i + 1));
    EXPECT_NEAR(knn[i].path_probability, std::pow(0.8, i + 1), 1e-12);
  }
}

TEST(KnnTest, BatchMatchesPerSourceResults) {
  UncertainGraph g = testing_util::CompleteK4(0.5);
  std::vector<VertexId> sources = {0, 1, 2, 3, 0};
  std::vector<std::vector<KnnResult>> batch =
      MostProbableKnnBatch(g, sources, 3);
  ASSERT_EQ(batch.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    std::vector<KnnResult> single = MostProbableKnn(g, sources[i], 3);
    ASSERT_EQ(batch[i].size(), single.size()) << "source " << sources[i];
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batch[i][j].vertex, single[j].vertex);
      EXPECT_DOUBLE_EQ(batch[i][j].path_probability,
                       single[j].path_probability);
    }
  }
}

}  // namespace
}  // namespace ugs
