#include "flow/dinic.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ugs {
namespace {

TEST(DinicTest, SingleArc) {
  DinicMaxFlow flow(2);
  std::size_t a = flow.AddArc(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 1), 3.5);
  EXPECT_DOUBLE_EQ(flow.FlowOn(a), 3.5);
}

TEST(DinicTest, SeriesBottleneck) {
  DinicMaxFlow flow(3);
  flow.AddArc(0, 1, 5.0);
  flow.AddArc(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 2), 2.0);
}

TEST(DinicTest, ParallelPathsSum) {
  DinicMaxFlow flow(4);
  flow.AddArc(0, 1, 3.0);
  flow.AddArc(1, 3, 3.0);
  flow.AddArc(0, 2, 4.0);
  flow.AddArc(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 3), 7.0);
}

TEST(DinicTest, ClassicTextbookNetwork) {
  // CLRS-style example with a known max flow of 23.
  DinicMaxFlow flow(6);
  flow.AddArc(0, 1, 16);
  flow.AddArc(0, 2, 13);
  flow.AddArc(1, 2, 10);
  flow.AddArc(2, 1, 4);
  flow.AddArc(1, 3, 12);
  flow.AddArc(3, 2, 9);
  flow.AddArc(2, 4, 14);
  flow.AddArc(4, 3, 7);
  flow.AddArc(3, 5, 20);
  flow.AddArc(4, 5, 4);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 5), 23.0);
}

TEST(DinicTest, DisconnectedSinkGivesZero) {
  DinicMaxFlow flow(4);
  flow.AddArc(0, 1, 5.0);
  flow.AddArc(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(flow.Solve(0, 3), 0.0);
}

TEST(DinicTest, FractionalCapacities) {
  DinicMaxFlow flow(3);
  flow.AddArc(0, 1, 0.125);
  flow.AddArc(0, 1, 0.25);
  flow.AddArc(1, 2, 1.0);
  EXPECT_NEAR(flow.Solve(0, 2), 0.375, 1e-12);
}

TEST(DinicTest, MinCutSideAfterSolve) {
  DinicMaxFlow flow(3);
  flow.AddArc(0, 1, 10.0);
  flow.AddArc(1, 2, 1.0);  // Bottleneck: cut between 1 and 2.
  flow.Solve(0, 2);
  EXPECT_TRUE(flow.OnSourceSide(0));
  EXPECT_TRUE(flow.OnSourceSide(1));
  EXPECT_FALSE(flow.OnSourceSide(2));
}

TEST(DinicTest, FlowConservationOnRandomNetworks) {
  // Property test: on random DAG-ish networks, flow is conserved at every
  // interior node and never exceeds arc capacity.
  Rng rng(333);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t n = 10;
    DinicMaxFlow flow(n);
    struct ArcInfo {
      std::uint32_t from, to;
      double cap;
      std::size_t idx;
    };
    std::vector<ArcInfo> arcs;
    for (std::uint32_t u = 0; u < n; ++u) {
      for (std::uint32_t v = u + 1; v < n; ++v) {
        if (rng.Bernoulli(0.4)) {
          double cap = rng.Uniform(0.1, 2.0);
          arcs.push_back({u, v, cap, flow.AddArc(u, v, cap)});
        }
      }
    }
    double value = flow.Solve(0, n - 1);
    std::vector<double> net(n, 0.0);
    for (const ArcInfo& a : arcs) {
      double f = flow.FlowOn(a.idx);
      EXPECT_GE(f, -1e-9);
      EXPECT_LE(f, a.cap + 1e-9);
      net[a.from] -= f;
      net[a.to] += f;
    }
    EXPECT_NEAR(net[0], -value, 1e-9);
    EXPECT_NEAR(net[n - 1], value, 1e-9);
    for (std::uint32_t u = 1; u + 1 < n; ++u) {
      EXPECT_NEAR(net[u], 0.0, 1e-9) << "node " << u;
    }
  }
}

TEST(DinicTest, MatchesBruteForceOnBipartiteMatching) {
  // 3x3 bipartite unit-capacity matching instances vs exhaustive check.
  Rng rng(777);
  for (int trial = 0; trial < 30; ++trial) {
    bool adj[3][3];
    for (auto& row : adj) {
      for (bool& x : row) x = rng.Bernoulli(0.5);
    }
    // Brute force maximum matching over all permutations/subsets.
    int best = 0;
    for (int mask = 0; mask < 8; ++mask) {
      // Try to match the subset of left vertices in `mask` greedily over
      // all 3! assignments.
      int perm[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                        {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
      for (auto& p : perm) {
        int size = 0;
        for (int l = 0; l < 3; ++l) {
          if ((mask >> l) & 1 && adj[l][p[l]]) ++size;
        }
        best = std::max(best, size);
      }
    }
    DinicMaxFlow flow(8);  // 0 = s, 1..3 left, 4..6 right, 7 = t.
    for (int l = 0; l < 3; ++l) flow.AddArc(0, 1 + l, 1.0);
    for (int r = 0; r < 3; ++r) flow.AddArc(4 + r, 7, 1.0);
    for (int l = 0; l < 3; ++l) {
      for (int r = 0; r < 3; ++r) {
        if (adj[l][r]) flow.AddArc(1 + l, 4 + r, 1.0);
      }
    }
    EXPECT_NEAR(flow.Solve(0, 7), best, 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace ugs
