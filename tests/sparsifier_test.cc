#include "sparsify/sparsifier.h"

#include <set>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "tests/test_util.h"

namespace ugs {
namespace {

/// Shared medium test graph: dense enough that every alpha in the paper's
/// sweep admits a connected backbone (0.08 |E| >= |V| - 1, footnote 7).
const UncertainGraph& TestGraph() {
  static const UncertainGraph* graph = [] {
    Rng rng(12345);
    auto* g = new UncertainGraph(GenerateErdosRenyi(
        120, 1800, ProbabilityDistribution::Uniform(0.05, 0.7), &rng));
    return g;
  }();
  return *graph;
}

using VariantCase = std::tuple<std::string, double>;

class SparsifierVariantTest
    : public ::testing::TestWithParam<VariantCase> {};

TEST_P(SparsifierVariantTest, ProducesValidSparsifiedGraph) {
  const auto& [name, alpha] = GetParam();
  auto method = MakeSparsifierByName(name);
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  const UncertainGraph& g = TestGraph();
  Rng rng(99);
  Result<SparsifyOutput> result = (*method)->Sparsify(g, alpha, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // |E'| = alpha |E| exactly (Problem 1).
  EXPECT_EQ(result->graph.num_edges(), TargetEdgeCount(g, alpha));
  EXPECT_EQ(result->original_edge_ids.size(), result->graph.num_edges());
  EXPECT_EQ(result->graph.num_vertices(), g.num_vertices());

  // E' is a subset of E: ids valid and distinct, endpoints match.
  std::set<EdgeId> distinct;
  for (std::size_t i = 0; i < result->original_edge_ids.size(); ++i) {
    EdgeId orig = result->original_edge_ids[i];
    ASSERT_LT(orig, g.num_edges());
    EXPECT_TRUE(distinct.insert(orig).second);
    const UncertainEdge& oe = g.edge(orig);
    const UncertainEdge& se = result->graph.edge(static_cast<EdgeId>(i));
    EXPECT_EQ(std::min(oe.u, oe.v), std::min(se.u, se.v));
    EXPECT_EQ(std::max(oe.u, oe.v), std::max(se.u, se.v));
  }

  // Probabilities are legal.
  for (const UncertainEdge& e : result->graph.edges()) {
    EXPECT_GE(e.p, 0.0);
    EXPECT_LE(e.p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllAlphas, SparsifierVariantTest,
    ::testing::Combine(
        ::testing::Values("LP", "LP-t", "GDBA", "GDBR", "GDBA2", "GDBAn",
                          "GDBA-t", "GDBR-t", "EMDA", "EMDR", "EMDA-t",
                          "EMDR-t", "NI", "SS", "GDBA-k3"),
        ::testing::Values(0.08, 0.16, 0.32, 0.64)),
    [](const ::testing::TestParamInfo<VariantCase>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_a" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(SparsifierRegistryTest, KnownNamesAllConstruct) {
  for (const std::string& name : KnownSparsifierNames()) {
    auto method = MakeSparsifierByName(name);
    ASSERT_TRUE(method.ok()) << name;
    EXPECT_EQ((*method)->name(), name);
  }
}

TEST(SparsifierRegistryTest, RepresentativeAliases) {
  auto gdb = MakeSparsifierByName("GDB");
  ASSERT_TRUE(gdb.ok());
  EXPECT_EQ((*gdb)->name(), "GDBA");
  auto emd = MakeSparsifierByName("EMD");
  ASSERT_TRUE(emd.ok());
  EXPECT_EQ((*emd)->name(), "EMDR-t");
}

TEST(SparsifierRegistryTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeSparsifierByName("FOO").ok());
  EXPECT_FALSE(MakeSparsifierByName("GDBX").ok());
  EXPECT_FALSE(MakeSparsifierByName("EMDA2").ok());  // EMD is k=1 only.
  EXPECT_FALSE(MakeSparsifierByName("GDBA-k0").ok());
}

TEST(SparsifierRegistryTest, GeneralKName) {
  auto m = MakeSparsifierByName("GDBA-k5");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->name(), "GDBA-k5");
}

TEST(SparsifierTest, SpanningVariantsYieldConnectedGraphs) {
  Rng rng(5);
  const UncertainGraph& g = TestGraph();
  for (std::string name : {"GDBA-t", "EMDR-t", "LP-t"}) {
    auto method = MakeSparsifierByName(name);
    ASSERT_TRUE(method.ok());
    Result<SparsifyOutput> result = (*method)->Sparsify(g, 0.32, &rng);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->graph.IsStructurallyConnected()) << name;
  }
}

TEST(SparsifierTest, ReportsPositiveTime) {
  Rng rng(6);
  auto method = MakeSparsifierByName("GDBA");
  ASSERT_TRUE(method.ok());
  Result<SparsifyOutput> result =
      (*method)->Sparsify(TestGraph(), 0.32, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->seconds, 0.0);
}

TEST(SparsifierTest, GdbReducesEntropyVsBackboneSeed) {
  // The central entropy claim: GDB's output entropy is below the original
  // graph's entropy scaled by alpha-ish, and below seeding probabilities.
  Rng rng(7);
  auto method = MakeSparsifierByName("GDBA", /*h=*/0.05);
  ASSERT_TRUE(method.ok());
  const UncertainGraph& g = TestGraph();
  Result<SparsifyOutput> result = (*method)->Sparsify(g, 0.32, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->graph.EntropyBits(), g.EntropyBits());
}

TEST(SparsifierTest, InvalidAlphaSurfacesStatus) {
  Rng rng(8);
  auto method = MakeSparsifierByName("GDBA");
  ASSERT_TRUE(method.ok());
  EXPECT_FALSE((*method)->Sparsify(TestGraph(), 0.0, &rng).ok());
  EXPECT_FALSE((*method)->Sparsify(TestGraph(), 1.5, &rng).ok());
}

}  // namespace
}  // namespace ugs
