#include "util/status.h"

#include <gtest/gtest.h>

namespace ugs {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad alpha");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringNames) {
  EXPECT_EQ(Status::NotFound("f").ToString(), "NOT_FOUND: f");
  EXPECT_EQ(Status::IOError("g").ToString(), "IO_ERROR: g");
  EXPECT_EQ(Status::Internal("").ToString(), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    UGS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(ResultTest, ReturnIfErrorMacroPassesOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    UGS_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace ugs
