#include "telemetry/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/trace.h"

namespace ugs {
namespace telemetry {
namespace {

TEST(CounterTest, StartsAtZeroAndSumsAdds) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, MovesBothWays) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Add(5);
  gauge.Sub(2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Set(-7);
  EXPECT_EQ(gauge.Value(), -7);
}

TEST(HistogramTest, EmptyHistogramReportsZeroPercentiles) {
  Histogram histogram(LatencyBucketsUs());
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.sum, 0u);
  EXPECT_EQ(snapshot.Percentile(0.5), 0.0);
  EXPECT_EQ(snapshot.Percentile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleReportsItsBucketUpperBound) {
  Histogram histogram({10, 100, 1000});
  histogram.Record(37);  // Lands in the (10, 100] bucket.
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1u);
  EXPECT_EQ(snapshot.sum, 37u);
  EXPECT_EQ(snapshot.Percentile(0.5), 100.0);
  EXPECT_EQ(snapshot.Percentile(0.99), 100.0);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpperBounds) {
  // Prometheus `le` semantics: a value equal to a bound belongs to
  // that bound's bucket, one past it to the next.
  Histogram histogram({10, 100});
  histogram.Record(10);
  histogram.Record(11);
  histogram.Record(101);  // Overflow bucket.
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 3u);
  EXPECT_EQ(snapshot.counts[0], 1u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.count, 3u);
  EXPECT_EQ(snapshot.sum, 10u + 11u + 101u);
}

TEST(HistogramTest, PowerOfTwoLadderMatchesGenericBucketing) {
  // The 1,2,4,... ladder takes the bit-scan fast path in Record; a
  // histogram with the same bounds plus a non-ladder twin must bucket
  // every value identically (inclusive upper bounds both ways).
  Histogram ladder(LatencyBucketsUs());
  std::vector<std::uint64_t> skewed = LatencyBucketsUs();
  skewed.push_back(skewed.back() + 1);  // Breaks the ladder shape.
  Histogram generic(skewed);
  std::vector<std::uint64_t> values = {0, 1, 2, 3, 4, 5, 7, 8, 9, 1023,
                                       1024, 1025, (1ull << 25),
                                       (1ull << 25) + 1, (1ull << 40)};
  for (std::uint64_t v : values) {
    ladder.Record(v);
    generic.Record(v);
  }
  const HistogramSnapshot a = ladder.Snapshot();
  const HistogramSnapshot b = generic.Snapshot();
  // Every shared (finite-ladder) bucket agrees; the ladder's overflow
  // bucket equals the generic histogram's last two buckets combined.
  for (std::size_t i = 0; i < a.counts.size() - 1; ++i) {
    EXPECT_EQ(a.counts[i], b.counts[i]) << "bucket " << i;
  }
  EXPECT_EQ(a.counts.back(),
            b.counts[a.counts.size() - 1] + b.counts[a.counts.size()]);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
}

TEST(HistogramTest, OverflowBucketReportsLastFiniteBound) {
  Histogram histogram({10, 100});
  histogram.Record(5000);
  EXPECT_EQ(histogram.Snapshot().Percentile(0.5), 100.0);
}

TEST(HistogramTest, PercentilesInterpolateWithinBuckets) {
  Histogram histogram({100});
  for (int i = 0; i < 100; ++i) histogram.Record(50);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  // All mass in the (0, 100] bucket: rank r of 100 interpolates to r.
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(snapshot.Percentile(1.0), 100.0);
}

TEST(HistogramTest, PercentileRanksSpanBuckets) {
  Histogram histogram({10, 100, 1000});
  for (int i = 0; i < 90; ++i) histogram.Record(5);    // <= 10
  for (int i = 0; i < 9; ++i) histogram.Record(50);    // (10, 100]
  histogram.Record(500);                               // (100, 1000]
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_LE(snapshot.Percentile(0.5), 10.0);
  EXPECT_GT(snapshot.Percentile(0.95), 10.0);
  EXPECT_LE(snapshot.Percentile(0.95), 100.0);
  EXPECT_GT(snapshot.Percentile(1.0), 100.0);
}

TEST(HistogramTest, ConcurrentRecordsKeepExactCountAndSum) {
  Histogram histogram(LatencyBucketsUs());
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        histogram.Record(static_cast<std::uint64_t>(t * 37 + i % 97));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count,
            static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kRecordsPerThread; ++i) {
      expected_sum += static_cast<std::uint64_t>(t * 37 + i % 97);
    }
  }
  EXPECT_EQ(snapshot.sum, expected_sum);
}

TEST(RegistryTest, RendersCountersAndGauges) {
  Registry registry;
  Counter requests;
  Gauge depth;
  requests.Add(3);
  depth.Set(2);
  registry.AddCounter("ugs_requests_total", "Requests answered.", {},
                      &requests);
  registry.AddGauge("ugs_queue_depth", "Dispatch queue depth.",
                    {{"pool", "main"}}, &depth);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP ugs_requests_total Requests answered.\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ugs_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("ugs_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ugs_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ugs_queue_depth{pool=\"main\"} 2\n"),
            std::string::npos);
}

TEST(RegistryTest, RendersHistogramWithCumulativeBucketsAndScale) {
  Registry registry;
  Histogram latency({1000, 2000});
  latency.Record(500);
  latency.Record(1500);
  latency.Record(9999);
  registry.AddHistogram("ugs_latency_seconds", "Latency.", {{"kind", "x"}},
                        &latency, 1e-6);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE ugs_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("ugs_latency_seconds_bucket{kind=\"x\",le=\"0.001\"} 1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("ugs_latency_seconds_bucket{kind=\"x\",le=\"0.002\"} 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("ugs_latency_seconds_bucket{kind=\"x\",le=\"+Inf\"} 3\n"),
      std::string::npos);
  EXPECT_NE(text.find("ugs_latency_seconds_count{kind=\"x\"} 3\n"),
            std::string::npos);
  // Sum is scaled to seconds: (500 + 1500 + 9999) us = 0.011999 s.
  EXPECT_NE(text.find("ugs_latency_seconds_sum{kind=\"x\"} 0.011999\n"),
            std::string::npos);
}

TEST(RegistryTest, SharedNameEmitsOneHeader) {
  Registry registry;
  Counter a, b;
  registry.AddCounter("ugs_kind_total", "By kind.", {{"kind", "a"}}, &a);
  registry.AddCounter("ugs_kind_total", "By kind.", {{"kind", "b"}}, &b);
  const std::string text = registry.PrometheusText();
  std::size_t first = text.find("# HELP ugs_kind_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# HELP ugs_kind_total", first + 1), std::string::npos);
}

TEST(RegistryTest, EscapesLabelValues) {
  Registry registry;
  Counter c;
  registry.AddCounter("ugs_odd_total", "Odd labels.",
                      {{"path", "a\\b\"c\nd"}}, &c);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("ugs_odd_total{path=\"a\\\\b\\\"c\\nd\"} 0\n"),
            std::string::npos);
}

TEST(TraceRecorderTest, RingRetainsMostRecentTracesInOrder) {
  TraceRecorder recorder(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    RequestTrace trace;
    trace.graph = "g" + std::to_string(i);
    recorder.Record(std::move(trace));
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const std::vector<RequestTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces.front().graph, "g6");
  EXPECT_EQ(traces.back().graph, "g9");
}

TEST(TraceRecorderTest, SnapshotBelowCapacityReturnsAllRecorded) {
  TraceRecorder recorder(/*capacity=*/8);
  RequestTrace trace;
  trace.graph = "only";
  recorder.Record(std::move(trace));
  const std::vector<RequestTrace> traces = recorder.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].graph, "only");
}

TEST(TraceRecorderTest, ConcurrentRecordsCountExactly) {
  TraceRecorder recorder(/*capacity=*/16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Record(RequestTrace{});
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(recorder.Snapshot().size(), 16u);
}

TEST(SlowQueryLineTest, FormatsEveryStageAndIdentity) {
  RequestTrace trace;
  trace.graph = "g1";
  trace.query = "reliability";
  trace.estimator = "sampled";
  trace.samples = 1000;
  trace.cache_hit = false;
  trace.total_us = 41203;
  trace.stage_us[static_cast<int>(Stage::kDecode)] = 12;
  trace.stage_us[static_cast<int>(Stage::kExecute)] = 40000;
  const std::string line = SlowQueryLine(trace);
  EXPECT_NE(line.find("slow-query graph=g1 query=reliability "
                      "estimator=sampled status=ok cache_hit=0 "
                      "samples=1000 total_ms=41.203"),
            std::string::npos);
  EXPECT_NE(line.find("decode_ms=0.012"), std::string::npos);
  EXPECT_NE(line.find("execute_ms=40.000"), std::string::npos);
  EXPECT_NE(line.find("queue_ms=0.000"), std::string::npos);
  EXPECT_NE(line.find("write_ms=0.000"), std::string::npos);
}

TEST(SlowQueryLineTest, EmptyIdentityFieldsRenderAsDashes) {
  RequestTrace trace;
  trace.ok = false;
  const std::string line = SlowQueryLine(trace);
  EXPECT_NE(line.find("graph=- query=- estimator=- status=error"),
            std::string::npos);
}

TEST(StageNameTest, NamesEveryStage) {
  EXPECT_STREQ(StageName(Stage::kDecode), "decode");
  EXPECT_STREQ(StageName(Stage::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(StageName(Stage::kQueueWait), "queue_wait");
  EXPECT_STREQ(StageName(Stage::kExecute), "execute");
  EXPECT_STREQ(StageName(Stage::kEncode), "encode");
  EXPECT_STREQ(StageName(Stage::kWrite), "write");
}

}  // namespace
}  // namespace telemetry
}  // namespace ugs
