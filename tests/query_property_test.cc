// Cross-validation of the Monte-Carlo query engine against the exact
// possible-world oracle on randomized small graphs: reliability,
// connectivity, and conditional shortest-path distance. Parameterized
// over seeds so each instance exercises a different topology.

#include <cmath>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "metrics/emd_distance.h"
#include "query/exact.h"
#include "query/reliability.h"
#include "query/shortest_path.h"
#include "query/world_sampler.h"

namespace ugs {
namespace {

/// Random graph small enough for exact enumeration (<= 14 edges).
UncertainGraph SmallGraph(std::uint64_t seed) {
  Rng rng(seed);
  return GenerateErdosRenyi(7, 12,
                            ProbabilityDistribution::Uniform(0.15, 0.85),
                            &rng, /*ensure_connected=*/false);
}

class McVsExactTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McVsExactTest, ReliabilityWithinConfidence) {
  UncertainGraph g = SmallGraph(GetParam());
  Rng rng(GetParam() * 3 + 1);
  const int kSamples = 20000;
  for (VertexId t : {1u, 3u, 6u}) {
    double exact = ExactReliability(g, 0, t);
    std::vector<double> mc =
        EstimateReliability(g, {{0, t}}, kSamples, &rng);
    // 5-sigma binomial bound.
    double sigma = std::sqrt(exact * (1 - exact) / kSamples);
    EXPECT_NEAR(mc[0], exact, 5 * sigma + 5e-3)
        << "seed " << GetParam() << " target " << t;
  }
}

TEST_P(McVsExactTest, ConnectivityWithinConfidence) {
  UncertainGraph g = SmallGraph(GetParam());
  Rng rng(GetParam() * 5 + 2);
  const int kSamples = 20000;
  double exact = ExactConnectivityProbability(g);
  double mc = EstimateConnectivity(g, kSamples, &rng);
  double sigma = std::sqrt(exact * (1 - exact) / kSamples);
  EXPECT_NEAR(mc, exact, 5 * sigma + 5e-3) << "seed " << GetParam();
}

TEST_P(McVsExactTest, ConditionalShortestPathMatches) {
  UncertainGraph g = SmallGraph(GetParam());
  Rng rng(GetParam() * 7 + 3);
  double exact_connect = 0.0;
  double exact_distance = ExactExpectedDistance(g, 0, 5, &exact_connect);
  if (exact_connect < 0.05) {
    GTEST_SKIP() << "pair (0,5) almost never connected for this seed";
  }
  McSamples sp = McShortestPath(g, {{0, 5}}, 30000, &rng);
  double mc_distance = sp.UnitMean(0);
  std::size_t valid = sp.UnitSamples(0).size();
  EXPECT_NEAR(static_cast<double>(valid) / sp.num_samples, exact_connect,
              0.02);
  EXPECT_NEAR(mc_distance, exact_distance, 0.05) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, McVsExactTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(McSamplesPropertyTest, ReliabilityMeanEqualsValidSpFraction) {
  // Internal consistency between two query paths: the fraction of worlds
  // where SP is valid must equal the reliability estimate when driven by
  // the same world stream.
  Rng g_rng(99);
  UncertainGraph g = GenerateErdosRenyi(
      20, 50, ProbabilityDistribution::Uniform(0.2, 0.8), &g_rng);
  std::vector<VertexPair> pairs{{0, 10}, {3, 17}};
  Rng r1(5), r2(5);  // Identical streams.
  McSamples sp = McShortestPath(g, pairs, 500, &r1);
  McSamples rl = McReliability(g, pairs, 500, &r2);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    double valid_fraction =
        static_cast<double>(sp.UnitSamples(i).size()) / sp.num_samples;
    EXPECT_NEAR(valid_fraction, rl.UnitMean(i), 1e-12) << "pair " << i;
  }
}

TEST(EmdSelfDistanceTest, SameDistributionNearZero) {
  // D_em between two independent sample sets of the same query shrinks
  // with the sample count (noise floor sanity for the D_em experiments).
  Rng g_rng(7);
  UncertainGraph g = GenerateErdosRenyi(
      30, 120, ProbabilityDistribution::Uniform(0.2, 0.8), &g_rng);
  std::vector<VertexPair> pairs{{0, 15}};
  Rng r1(1), r2(2), r3(3), r4(4);
  double small = MeanUnitEmd(McReliability(g, pairs, 100, &r1),
                             McReliability(g, pairs, 100, &r2));
  double large = MeanUnitEmd(McReliability(g, pairs, 10000, &r3),
                             McReliability(g, pairs, 10000, &r4));
  EXPECT_LT(large, small + 1e-9);
  EXPECT_LT(large, 0.02);
}

}  // namespace
}  // namespace ugs
