// Serving-layer round-trip throughput bench: starts an in-process Server
// on a loopback socket over a temp graph directory, fires a fixed request
// set from concurrent clients at a ladder of worker counts, and verifies
// every response is bit-identical to a local GraphSession::Run of the
// same request (the serving determinism contract). Writes
// BENCH_service.json with (threads = server workers, wall ms, samples/s,
// requests/s, overhead vs local) so future serving PRs (sharding,
// caching, async backends) have a trajectory to diff.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "graph/graph_io.h"
#include "query/graph_session.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "util/timer.h"

namespace {

struct RunResult {
  double wall_ms = 0.0;
  bool identical = true;
};

/// Fires `requests` across `num_clients` concurrent connections;
/// request i's response is compared against expected[i].
RunResult FireRequests(int port, const std::string& graph_id,
                       const std::vector<ugs::QueryRequest>& requests,
                       const std::vector<ugs::QueryResult>& expected,
                       int num_clients) {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> identical{true};
  ugs::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      ugs::Result<ugs::Client> client =
          ugs::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        identical.store(false);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests.size()) break;
        ugs::Result<ugs::QueryResult> result =
            client->Query(graph_id, requests[i]);
        if (!result.ok() || !ugs::PayloadEquals(*result, expected[i])) {
          identical.store(false);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  RunResult run;
  run.wall_ms = timer.ElapsedMillis();
  run.identical = identical.load();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Serving layer: wire round-trip throughput (ugs_serve)");

  // The served dataset lives in a temp graph directory, like production.
  char dir_template[] = "/tmp/ugs_bench_service_XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string graph_dir = dir_template;
  ugs::UncertainGraph graph = ugs::bench::LoadDataset("Twitter", config);
  if (!ugs::SaveEdgeList(graph, graph_dir + "/twitter.txt").ok()) {
    std::fprintf(stderr, "cannot write %s/twitter.txt\n", graph_dir.c_str());
    return 1;
  }

  const int num_samples = config.Samples(100, 16);
  const int num_requests = config.Samples(48, 12);
  std::vector<ugs::QueryRequest> requests;
  requests.reserve(static_cast<std::size_t>(num_requests));
  ugs::Rng pair_rng(config.seed + 7);
  for (int i = 0; i < num_requests; ++i) {
    ugs::QueryRequest request;
    request.query = "reliability";
    request.pairs =
        ugs::SampleDistinctPairs(graph.num_vertices(), 4, &pair_rng);
    request.num_samples = num_samples;
    request.seed = config.seed + static_cast<std::uint64_t>(i);
    requests.push_back(std::move(request));
  }

  // Local reference: both the determinism baseline and the overhead
  // yardstick (request time without framing/socket/registry).
  ugs::GraphSession local(graph);
  std::vector<ugs::QueryResult> expected;
  expected.reserve(requests.size());
  ugs::Timer local_timer;
  for (const ugs::QueryRequest& request : requests) {
    expected.push_back(ugs::MustQuery(local, request));
  }
  const double local_ms = local_timer.ElapsedMillis();

  ugs::BenchJsonWriter json;
  ugs::ReportTable table({"workers", "wall ms", "req/s", "samples/s",
                          "overhead", "identical"});
  bool all_identical = true;
  for (int workers : {1, 2, 4}) {
    ugs::ServerOptions options;
    options.port = 0;
    options.num_workers = workers;
    options.registry.graph_dir = graph_dir;
    ugs::Server server(options);
    ugs::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    // Warm-up: populate the registry so the measured region serves hits.
    FireRequests(server.port(), "twitter", {requests[0]}, {expected[0]}, 1);
    RunResult run = FireRequests(server.port(), "twitter", requests,
                                 expected, workers);
    server.Stop();
    all_identical = all_identical && run.identical;

    const double seconds = run.wall_ms / 1e3;
    const double requests_per_sec =
        static_cast<double>(num_requests) / seconds;
    const double samples_per_sec =
        static_cast<double>(num_requests) * num_samples / seconds;
    const double overhead = local_ms > 0.0 ? run.wall_ms / local_ms : 1.0;
    table.AddRow({std::to_string(workers), ugs::FormatFixed(run.wall_ms, 1),
                  ugs::FormatFixed(requests_per_sec, 1),
                  ugs::FormatFixed(samples_per_sec, 1),
                  ugs::FormatFixed(overhead, 2),
                  run.identical ? "yes" : "NO"});
    json.Add({"bench_service/reliability",
              "Twitter",
              workers,
              run.wall_ms,
              samples_per_sec,
              {{"requests_per_sec", requests_per_sec},
               {"num_requests", static_cast<double>(num_requests)},
               {"num_samples", static_cast<double>(num_samples)},
               {"local_ms", local_ms},
               {"overhead_vs_local", overhead},
               {"identical_to_local", run.identical ? 1.0 : 0.0}}});
  }
  table.Print();
  std::printf("local (no service): %s ms for %d requests\n",
              ugs::FormatFixed(local_ms, 1).c_str(), num_requests);

  std::remove((graph_dir + "/twitter.txt").c_str());
  ::rmdir(graph_dir.c_str());

  const std::string out_path = "BENCH_service.json";
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: a served response differed from "
                 "the local run\n");
    return 1;
  }
  return 0;
}
