// Serving-layer round-trip throughput bench: starts an in-process Server
// on a loopback socket over a temp graph directory, fires a fixed request
// set from concurrent clients at a ladder of worker counts, and verifies
// every response is bit-identical to a local GraphSession::Run of the
// same request (the serving determinism contract). Also measures the
// result cache's hit-path vs miss-path round-trip latency, the telemetry
// layer's overhead on the hit path (asserted <5%), and how the epoll
// backend's round trip scales with parked idle connections. Writes
// BENCH_service.json with (threads = server workers, wall ms, samples/s,
// requests/s, overhead vs local) so future serving PRs (sharding,
// batching, multi-reactor) have a trajectory to diff.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "graph/graph_io.h"
#include "query/graph_session.h"
#include "service/client.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "service/wire.h"
#include "util/timer.h"

namespace {

struct RunResult {
  double wall_ms = 0.0;
  bool identical = true;
};

/// Fires `requests` across `num_clients` concurrent connections;
/// request i's response is compared against expected[i].
RunResult FireRequests(int port, const std::string& graph_id,
                       const std::vector<ugs::QueryRequest>& requests,
                       const std::vector<ugs::QueryResult>& expected,
                       int num_clients) {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> identical{true};
  ugs::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      ugs::Result<ugs::Client> client =
          ugs::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        identical.store(false);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests.size()) break;
        ugs::Result<ugs::QueryResult> result =
            client->Query(graph_id, requests[i]);
        if (!result.ok() || !ugs::PayloadEquals(*result, expected[i])) {
          identical.store(false);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  RunResult run;
  run.wall_ms = timer.ElapsedMillis();
  run.identical = identical.load();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Serving layer: wire round-trip throughput (ugs_serve)");

  // The served dataset lives in a temp graph directory, like production.
  char dir_template[] = "/tmp/ugs_bench_service_XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string graph_dir = dir_template;
  ugs::UncertainGraph graph = ugs::bench::LoadDataset("Twitter", config);
  if (!ugs::SaveEdgeList(graph, graph_dir + "/twitter.txt").ok()) {
    std::fprintf(stderr, "cannot write %s/twitter.txt\n", graph_dir.c_str());
    return 1;
  }

  const int num_samples = config.Samples(100, 16);
  const int num_requests = config.Samples(48, 12);
  std::vector<ugs::QueryRequest> requests;
  requests.reserve(static_cast<std::size_t>(num_requests));
  ugs::Rng pair_rng(config.seed + 7);
  for (int i = 0; i < num_requests; ++i) {
    ugs::QueryRequest request;
    request.query = "reliability";
    request.pairs =
        ugs::SampleDistinctPairs(graph.num_vertices(), 4, &pair_rng);
    request.num_samples = num_samples;
    request.seed = config.seed + static_cast<std::uint64_t>(i);
    requests.push_back(std::move(request));
  }

  // Local reference: both the determinism baseline and the overhead
  // yardstick (request time without framing/socket/registry).
  ugs::GraphSession local(graph);
  std::vector<ugs::QueryResult> expected;
  expected.reserve(requests.size());
  ugs::Timer local_timer;
  for (const ugs::QueryRequest& request : requests) {
    expected.push_back(ugs::MustQuery(local, request));
  }
  const double local_ms = local_timer.ElapsedMillis();

  ugs::BenchJsonWriter json;
  ugs::ReportTable table({"workers", "wall ms", "req/s", "samples/s",
                          "overhead", "identical"});
  bool all_identical = true;
  for (int workers : {1, 2, 4}) {
    ugs::ServerOptions options;
    options.port = 0;
    options.num_workers = workers;
    options.registry.graph_dir = graph_dir;
    ugs::Server server(options);
    ugs::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    // Warm-up: populate the registry so the measured region serves hits.
    FireRequests(server.port(), "twitter", {requests[0]}, {expected[0]}, 1);
    RunResult run = FireRequests(server.port(), "twitter", requests,
                                 expected, workers);
    server.Stop();
    all_identical = all_identical && run.identical;

    const double seconds = run.wall_ms / 1e3;
    const double requests_per_sec =
        static_cast<double>(num_requests) / seconds;
    const double samples_per_sec =
        static_cast<double>(num_requests) * num_samples / seconds;
    const double overhead = local_ms > 0.0 ? run.wall_ms / local_ms : 1.0;
    table.AddRow({std::to_string(workers), ugs::FormatFixed(run.wall_ms, 1),
                  ugs::FormatFixed(requests_per_sec, 1),
                  ugs::FormatFixed(samples_per_sec, 1),
                  ugs::FormatFixed(overhead, 2),
                  run.identical ? "yes" : "NO"});
    json.Add({"bench_service/reliability",
              "Twitter",
              workers,
              run.wall_ms,
              samples_per_sec,
              {{"requests_per_sec", requests_per_sec},
               {"num_requests", static_cast<double>(num_requests)},
               {"num_samples", static_cast<double>(num_samples)},
               {"local_ms", local_ms},
               {"overhead_vs_local", overhead},
               {"identical_to_local", run.identical ? 1.0 : 0.0}}});
  }
  table.Print();
  std::printf("local (no service): %s ms for %d requests\n",
              ugs::FormatFixed(local_ms, 1).c_str(), num_requests);

  // --- Result cache: hit-path vs miss-path round trip. ---
  // One sequential client against a cache big enough for the whole
  // request set: pass 1 misses (decode + registry + engine + encode),
  // pass 2 hits (decode + lookup + replay) -- the difference is what the
  // cache buys a steady-state workload of repeated requests.
  {
    ugs::ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.registry.graph_dir = graph_dir;
    options.cache.max_entries = requests.size() + 8;
    ugs::Server server(options);
    ugs::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    double pass_ms[2];  // [0] = miss pass, [1] = hit pass.
    bool identical = true;
    {
      ugs::Result<ugs::Client> client =
          ugs::Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
        return 1;
      }
      // Warm the registry without touching the cache (the stats verb
      // opens the graph) so the miss pass measures the query path, not
      // the one-time graph load.
      if (!client->Stats("twitter").ok()) {
        std::fprintf(stderr, "warm-up stats failed\n");
        return 1;
      }
      for (double& ms : pass_ms) {
        ugs::Timer timer;
        for (std::size_t i = 0; i < requests.size(); ++i) {
          ugs::Result<ugs::QueryResult> result =
              client->Query("twitter", requests[i]);
          if (!result.ok() || !ugs::PayloadEquals(*result, expected[i])) {
            identical = false;
          }
        }
        ms = timer.ElapsedMillis();
      }
    }
    const ugs::ResultCacheCounters cache = server.cache().counters();
    server.Stop();
    // The hit pass must actually have hit: a silent all-miss second pass
    // would report a bogus "hit" latency.
    all_identical = all_identical && identical &&
                    cache.hits >= requests.size();

    const char* kind[2] = {"miss", "hit"};
    for (int pass = 0; pass < 2; ++pass) {
      const double rtt_us =
          pass_ms[pass] * 1e3 / static_cast<double>(num_requests);
      std::printf("cache %s path: %s ms (%s us/round trip)\n", kind[pass],
                  ugs::FormatFixed(pass_ms[pass], 1).c_str(),
                  ugs::FormatFixed(rtt_us, 1).c_str());
      json.Add({std::string("bench_service/cache_") + kind[pass] + "_rtt",
                "Twitter",
                2,
                pass_ms[pass],
                static_cast<double>(num_requests) * num_samples /
                    (pass_ms[pass] / 1e3),
                {{"rtt_us", rtt_us},
                 {"num_requests", static_cast<double>(num_requests)},
                 {"hit_vs_miss_speedup",
                  pass == 1 && pass_ms[1] > 0.0 ? pass_ms[0] / pass_ms[1]
                                                : 1.0},
                 {"identical_to_local", identical ? 1.0 : 0.0}}});
    }
  }

  // --- Telemetry overhead on the cache-hit path. ---
  // The hit path is the cheapest request the server answers (decode +
  // lookup + replay), so it is where the per-request metric writes are
  // the largest fraction of the work. Same sequential stream against an
  // all-hit cache with telemetry off vs on (the default); min-of-N
  // passes so scheduler noise cannot manufacture an overhead. The
  // instrumented path is a handful of relaxed fetch_adds plus a span
  // stamp, and the budget is <5% of a hit round trip.
  bool telemetry_within_budget = true;
  {
    const int kPasses = 7;
    const int kRoundsPerPass = 32;
    double min_ms[2] = {0.0, 0.0};  // [0] = telemetry off, [1] = on.
    bool identical = true;
    std::unique_ptr<ugs::Server> servers[2];
    std::vector<ugs::Client> clients;
    clients.reserve(2);
    for (int mode = 0; mode < 2; ++mode) {
      ugs::ServerOptions options;
      options.port = 0;
      options.num_workers = 2;
      options.registry.graph_dir = graph_dir;
      options.cache.max_entries = requests.size() + 8;
      options.telemetry.enabled = mode == 1;
      servers[mode] = std::make_unique<ugs::Server>(options);
      ugs::Status started = servers[mode]->Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
      ugs::Result<ugs::Client> client =
          ugs::Client::Connect("127.0.0.1", servers[mode]->port());
      if (!client.ok()) {
        std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
        return 1;
      }
      clients.push_back(std::move(client.value()));
      // Priming pass fills the cache; every measured pass then hits.
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ugs::Result<ugs::QueryResult> result =
            clients[static_cast<std::size_t>(mode)].Query("twitter",
                                                          requests[i]);
        if (!result.ok() || !ugs::PayloadEquals(*result, expected[i])) {
          identical = false;
        }
      }
    }
    // Passes alternate between the two servers so machine-level noise
    // (frequency drift, noisy neighbors, context-switch storms on a
    // 1-CPU box) lands on both modes alike. The verdict compares the
    // two halves of one pass pair -- the same measurement window --
    // and takes the cleanest pair, instead of a cross-window min that
    // can pit a lucky baseline window against an unlucky one.
    double best_ratio = 0.0;
    for (int pass = 0; pass < kPasses; ++pass) {
      double pass_ms[2] = {0.0, 0.0};
      for (int mode = 0; mode < 2; ++mode) {
        ugs::Client& client = clients[static_cast<std::size_t>(mode)];
        ugs::Timer timer;
        for (int round = 0; round < kRoundsPerPass; ++round) {
          for (std::size_t i = 0; i < requests.size(); ++i) {
            ugs::Result<ugs::QueryResult> result =
                client.Query("twitter", requests[i]);
            if (!result.ok() || !ugs::PayloadEquals(*result, expected[i])) {
              identical = false;
            }
          }
        }
        const double ms = timer.ElapsedMillis();
        pass_ms[mode] = ms;
        if (pass == 0 || ms < min_ms[mode]) min_ms[mode] = ms;
      }
      const double ratio =
          pass_ms[0] > 0.0 ? pass_ms[1] / pass_ms[0] : 1.0;
      if (pass == 0 || ratio < best_ratio) best_ratio = ratio;
    }
    for (int mode = 0; mode < 2; ++mode) {
      const ugs::ResultCacheCounters cache =
          servers[mode]->cache().counters();
      servers[mode]->Stop();
      // Every measured request must have been a hit, or the "hit path"
      // overhead below is measuring the wrong path.
      if (cache.hits < requests.size() * kPasses * kRoundsPerPass) {
        identical = false;
      }
    }
    all_identical = all_identical && identical;
    const double overhead = best_ratio;
    telemetry_within_budget = overhead < 1.05;
    std::printf("telemetry on hit path: off %s ms, on %s ms -> %sx "
                "overhead (budget <1.05)%s\n",
                ugs::FormatFixed(min_ms[0], 1).c_str(),
                ugs::FormatFixed(min_ms[1], 1).c_str(),
                ugs::FormatFixed(overhead, 3).c_str(),
                telemetry_within_budget ? "" : "  OVER BUDGET");
    const char* mode_name[2] = {"off", "on"};
    for (int mode = 0; mode < 2; ++mode) {
      const double reqs = static_cast<double>(num_requests) * kRoundsPerPass;
      json.Add({std::string("bench_service/telemetry_") + mode_name[mode] +
                    "_hit_rtt",
                "Twitter",
                2,
                min_ms[mode],
                reqs * num_samples / (min_ms[mode] / 1e3),
                {{"rtt_us", min_ms[mode] * 1e3 / reqs},
                 {"num_requests", reqs},
                 {"telemetry_overhead", overhead},
                 {"within_budget", telemetry_within_budget ? 1.0 : 0.0},
                 {"identical_to_local", identical ? 1.0 : 0.0}}});
    }
  }

  // --- Overlapped requests on one session (the executor's reason to
  // exist): the same request stream fired by one client (serialized) vs
  // concurrent clients whose sample batches interleave on the shared
  // engine pool. On a multi-core box the overlapped rows win; on a 1-CPU
  // container flat is fine -- the asserted part is that every overlapped
  // response stays bit-identical to the local run.
  {
    for (int overlap : {1, 2, 4}) {
      ugs::ServerOptions options;
      options.port = 0;
      options.num_workers = 4;
      options.registry.graph_dir = graph_dir;
      ugs::Server server(options);
      ugs::Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
      // Warm the registry so every measured run serves a resident graph.
      FireRequests(server.port(), "twitter", {requests[0]}, {expected[0]},
                   1);
      RunResult run = FireRequests(server.port(), "twitter", requests,
                                   expected, overlap);
      server.Stop();
      all_identical = all_identical && run.identical;

      const double seconds = run.wall_ms / 1e3;
      std::printf("overlapped requests: %d client%s -> %s ms (%s req/s)%s\n",
                  overlap, overlap == 1 ? " " : "s",
                  ugs::FormatFixed(run.wall_ms, 1).c_str(),
                  ugs::FormatFixed(num_requests / seconds, 1).c_str(),
                  run.identical ? "" : "  NOT IDENTICAL");
      json.Add({"bench_service/overlapped_requests",
                "Twitter",
                4,
                run.wall_ms,
                static_cast<double>(num_requests) * num_samples / seconds,
                {{"concurrent_clients", static_cast<double>(overlap)},
                 {"requests_per_sec",
                  static_cast<double>(num_requests) / seconds},
                 {"num_requests", static_cast<double>(num_requests)},
                 {"identical_to_local", run.identical ? 1.0 : 0.0}}});
    }
  }

  // --- Idle-connection scaling (the reactor's reason to exist): parked
  // connections must not slow the active one down or starve it of
  // workers -- an idle connection costs an fd, never a worker.
  {
    for (int idle_count : {0, 64, 256}) {
      ugs::ServerOptions options;
      options.port = 0;
      options.num_workers = 2;
      options.registry.graph_dir = graph_dir;
      ugs::Server server(options);
      ugs::Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "%s\n", started.ToString().c_str());
        return 1;
      }
      std::vector<ugs::Client> idle;
      idle.reserve(static_cast<std::size_t>(idle_count));
      bool connected = true;
      for (int i = 0; i < idle_count; ++i) {
        ugs::Result<ugs::Client> client =
            ugs::Client::Connect("127.0.0.1", server.port());
        if (!client.ok()) {
          connected = false;
          break;
        }
        idle.push_back(std::move(client.value()));
      }
      if (!connected) {
        std::fprintf(stderr, "idle scaling: connect failed at %d conns\n",
                     idle_count);
        return 1;
      }
      // Warm the registry, then measure a sequential request stream on
      // one active connection while the idle ones sit on the reactor.
      FireRequests(server.port(), "twitter", {requests[0]}, {expected[0]},
                   1);
      RunResult run =
          FireRequests(server.port(), "twitter", requests, expected, 1);
      server.Stop();
      all_identical = all_identical && run.identical;

      const double rtt_us =
          run.wall_ms * 1e3 / static_cast<double>(num_requests);
      std::printf("idle scaling: %3d idle conns -> %s ms (%s us/round "
                  "trip)%s\n",
                  idle_count, ugs::FormatFixed(run.wall_ms, 1).c_str(),
                  ugs::FormatFixed(rtt_us, 1).c_str(),
                  run.identical ? "" : "  NOT IDENTICAL");
      json.Add({"bench_service/idle_connections",
                "Twitter",
                2,
                run.wall_ms,
                static_cast<double>(num_requests) * num_samples /
                    (run.wall_ms / 1e3),
                {{"idle_connections", static_cast<double>(idle_count)},
                 {"rtt_us", rtt_us},
                 {"num_requests", static_cast<double>(num_requests)},
                 {"identical_to_local", run.identical ? 1.0 : 0.0}}});
    }
  }

  std::remove((graph_dir + "/twitter.txt").c_str());
  ::rmdir(graph_dir.c_str());

  const std::string out_path = "BENCH_service.json";
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: a served response differed from "
                 "the local run\n");
    return 1;
  }
  if (!telemetry_within_budget) {
    std::fprintf(stderr,
                 "TELEMETRY OVER BUDGET: instrumented hit-path round trip "
                 "exceeded 1.05x the uninstrumented one\n");
    return 1;
  }
  return 0;
}
