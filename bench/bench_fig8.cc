// Figure 8: relative entropy H(G')/H(G) of the sparsified graphs --
// (a, b) versus alpha on the Flickr-like and Twitter-like datasets and
// (c) versus density on the synthetic sweep at alpha = 16%.
//
// Paper shape: GDB/EMD at least an order of magnitude below NI/SS at
// small alpha; relative entropy grows with alpha but stays below 1;
// roughly constant across the density sweep.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/discrepancy.h"
#include "sparsify/sparsifier.h"

namespace {

const std::vector<std::string>& Methods() {
  static const std::vector<std::string> methods = {"NI", "SS", "GDB",
                                                   "EMD"};
  return methods;
}

void AlphaPanel(const ugs::UncertainGraph& graph,
                const ugs::BenchConfig& config, const char* dataset) {
  const std::vector<double> alphas = ugs::PaperAlphas();
  std::vector<std::string> headers{"method"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable table(headers);
  for (const std::string& name : Methods()) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) std::abort();
    std::vector<std::string> row{name};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      row.push_back(ugs::FormatSci(ugs::RelativeEntropy(graph, out.graph)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\nrelative entropy vs alpha (%s):\n", dataset);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Figure 8: relative entropy of sparsified graphs");
  {
    ugs::UncertainGraph flickr = ugs::bench::LoadDataset("Flickr", config);
    AlphaPanel(flickr, config, "Flickr-like");
  }
  {
    ugs::UncertainGraph twitter = ugs::bench::LoadDataset("Twitter", config);
    AlphaPanel(twitter, config, "Twitter-like");
  }

  // (c) density sweep at alpha = 16%.
  const double alpha = 0.16;
  std::vector<std::string> headers{"method"};
  for (int d : ugs::PaperDensities()) {
    headers.push_back(std::to_string(d) + "%");
  }
  ugs::ReportTable table(headers);
  std::vector<ugs::UncertainGraph> graphs;
  for (int density : ugs::PaperDensities()) {
    graphs.push_back(ugs::bench::LoadDensityGraph(density, config));
  }
  for (const std::string& name : Methods()) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) return 1;
    std::vector<std::string> row{name};
    for (const ugs::UncertainGraph& graph : graphs) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      row.push_back(ugs::FormatSci(ugs::RelativeEntropy(graph, out.graph)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\nrelative entropy vs density (synthetic, alpha = 16%%):\n");
  table.Print();
  std::printf(
      "\npaper Figure 8 shape: GDB/EMD >= 1 order of magnitude below\n"
      "NI/SS at small alpha; all ratios < 1 and increasing with alpha;\n"
      "roughly flat across densities.\n");
  return 0;
}
