// Table 1: characteristics of the evaluation datasets. Prints the same
// columns the paper reports (|V|, |E|, |E|/|V|, E[p], E[d_u]) for every
// stand-in, next to the paper's values for the real datasets.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "gen/datasets.h"
#include "graph/graph_stats.h"

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Table 1: dataset characteristics");

  ugs::ReportTable table({"dataset", "vertices", "edges", "|E|/|V|",
                          "E[pe]", "E[du]", "H(G) bits"});
  auto add = [&](const std::string& name, const ugs::UncertainGraph& g) {
    ugs::GraphStats s = ugs::ComputeStats(g);
    table.AddRow({name, std::to_string(s.num_vertices),
                  std::to_string(s.num_edges),
                  ugs::FormatFixed(s.density, 2),
                  ugs::FormatFixed(s.mean_probability, 3),
                  ugs::FormatFixed(s.mean_expected_degree, 2),
                  ugs::FormatFixed(s.entropy_bits, 0)});
  };

  add("Flickr*", ugs::MakeFlickrLike(config.scale, config.seed + 42));
  add("Twitter*", ugs::MakeTwitterLike(config.scale, config.seed + 43));
  add("FlickrRed*", ugs::MakeFlickrReduced(config.scale, config.seed + 44));
  for (int density : ugs::PaperDensities()) {
    std::size_t n = static_cast<std::size_t>(1000 * config.scale);
    if (n < 64) n = 64;
    add("Synth-" + std::to_string(density),
        ugs::MakeDensitySweepGraph(density, n, config.seed + 45));
  }
  table.Print();

  std::printf(
      "\npaper Table 1 reference:\n"
      "  Flickr     78322 V  10171509 E  E/V=129.89  E[p]=0.09 E[d]=22.93\n"
      "  Twitter    26362 V    663766 E  E/V= 25.17  E[p]=0.15 E[d]= 7.71\n"
      "  Synthetic   1000 V  77099/147565/269325/435336 E  E[p]=0.09\n"
      "(* = synthetic stand-ins at laptop scale; see DESIGN.md Section 4)\n");
  return 0;
}
