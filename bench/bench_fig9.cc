// Figure 9: sparsification wall time versus alpha on the Flickr-like and
// Twitter-like datasets for NI, GDB, and EMD (SS is omitted in the paper
// because it takes hours; we include it behind --with-ss only).
//
// Paper shape: GDB/EMD terminate within a minute and scale linearly with
// alpha |E|; NI is more than an order of magnitude slower; times between
// the two datasets differ by roughly their |E| ratio.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "sparsify/sparsifier.h"

namespace {

void Panel(const ugs::UncertainGraph& graph, const ugs::BenchConfig& config,
           const char* dataset) {
  const std::vector<double> alphas = ugs::PaperAlphas();
  std::vector<std::string> headers{"method"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable table(headers);
  for (std::string name : {"NI", "GDB", "EMD"}) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) std::abort();
    std::vector<std::string> row{name};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      row.push_back(ugs::FormatFixed(out.seconds, 3));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\nsparsification time in seconds (%s):\n", dataset);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Figure 9: sparsification wall time (real datasets)");
  {
    ugs::UncertainGraph flickr = ugs::bench::LoadDataset("Flickr", config);
    Panel(flickr, config, "Flickr-like");
  }
  {
    ugs::UncertainGraph twitter = ugs::bench::LoadDataset("Twitter", config);
    Panel(twitter, config, "Twitter-like");
  }
  std::printf(
      "\npaper Figure 9 shape: GDB fastest, EMD slightly above GDB (the\n"
      "vertex heap keeps E-phase cheap), NI more than an order of\n"
      "magnitude slower; all grow with alpha; dataset times scale with\n"
      "|E|. SS omitted (hours at paper scale).\n");
  return 0;
}
