// Table 2: mean absolute error of the absolute degree discrepancy
// delta_A(u) on the reduced Flickr testbed, for all twelve variants of
// Section 6.1 (LP / GDB / EMD x absolute/relative x random/-t backbones,
// plus the k = 2 and k = n GDB rules) across the alpha sweep.
//
// Paper shape to reproduce: GDBAn is orders of magnitude worse than all
// others; the -t (spanning backbone) variants win for alpha >= 16%;
// EMDR-t is the best overall; LP is matched closely by GDB/EMD at a
// fraction of its cost.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/discrepancy.h"
#include "sparsify/sparsifier.h"

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv,
      "Table 2: MAE of absolute degree discrepancy (Flickr reduced)");
  ugs::UncertainGraph graph = ugs::bench::LoadDataset("FlickrReduced",
                                                      config);

  const std::vector<std::string> variants = {
      "LP",     "GDBA",   "GDBR",   "GDBA2",  "GDBAn",  "EMDA",
      "EMDR",   "LP-t",   "GDBA-t", "GDBR-t", "EMDA-t", "EMDR-t"};
  const std::vector<double> alphas = ugs::PaperAlphas();

  std::vector<std::string> headers{"variant"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable table(headers);

  for (const std::string& variant : variants) {
    auto method = ugs::MakeSparsifierByName(variant);
    if (!method.ok()) {
      std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> row{variant};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      row.push_back(ugs::FormatSci(ugs::DegreeDiscrepancyMae(
          graph, out.graph, ugs::DiscrepancyType::kAbsolute)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\npaper Table 2 shape: GDBAn worst by orders of magnitude; -t\n"
      "variants dominate for alpha >= 16%%; EMDR-t best overall; plain\n"
      "backbones preferable at alpha = 8%% (spanning forests overload\n"
      "low-degree vertices there).\n");
  return 0;
}
