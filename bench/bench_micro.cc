// Micro-benchmarks (google-benchmark) for the hot operations behind the
// paper's experiments: possible-world sampling, GDB sweeps, EMD E-phase,
// backbone construction, heap operations, the LP max-flow, and the query
// kernels. Not part of the paper's evaluation; used to track the
// library's own performance.

#include <benchmark/benchmark.h>

#include <map>
#include <utility>

#include "gen/generators.h"
#include "query/skip_sampler.h"
#include "query/pagerank.h"
#include "query/shortest_path.h"
#include "query/world_sampler.h"
#include "sparsify/backbone.h"
#include "sparsify/emd.h"
#include "sparsify/gdb.h"
#include "sparsify/lp_assign.h"
#include "sparsify/sparsifier.h"
#include "util/indexed_heap.h"

namespace {

const ugs::UncertainGraph& BenchGraph(std::size_t n, double avg_degree) {
  static std::map<std::pair<std::size_t, int>, ugs::UncertainGraph> cache;
  auto key = std::make_pair(n, static_cast<int>(avg_degree));
  auto it = cache.find(key);
  if (it == cache.end()) {
    ugs::Rng rng(1234);
    ugs::ChungLuOptions options;
    options.num_vertices = n;
    options.avg_degree = avg_degree;
    it = cache.emplace(key, ugs::GenerateChungLu(
                                options,
                                ugs::ProbabilityDistribution::Uniform(
                                    0.05, 0.6),
                                &rng))
             .first;
  }
  return it->second;
}

void BM_SampleWorld(benchmark::State& state) {
  const ugs::UncertainGraph& g =
      BenchGraph(static_cast<std::size_t>(state.range(0)), 16.0);
  ugs::Rng rng(1);
  std::vector<char> present;
  for (auto _ : state) {
    ugs::SampleWorld(g, &rng, &present);
    benchmark::DoNotOptimize(present.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_SampleWorld)->Arg(1000)->Arg(4000);

void BM_SkipSampleWorld(benchmark::State& state) {
  // Bucketed geometric-skip sampler on a low-probability graph. Draws
  // ~4x fewer random numbers than BM_SampleWorld, but is NOT faster
  // wall-clock with the cheap xoshiro RNG (see skip_sampler.h); this
  // benchmark documents that tradeoff.
  ugs::Rng g_rng(99);
  ugs::ChungLuOptions options;
  options.num_vertices = static_cast<std::size_t>(state.range(0));
  options.avg_degree = 16.0;
  static std::map<std::int64_t, ugs::UncertainGraph> cache;
  auto it = cache.find(state.range(0));
  if (it == cache.end()) {
    it = cache
             .emplace(state.range(0),
                      ugs::GenerateChungLu(
                          options,
                          ugs::ProbabilityDistribution::TruncatedExponential(
                              12.5),
                          &g_rng))
             .first;
  }
  const ugs::UncertainGraph& g = it->second;
  ugs::SkipWorldSampler sampler(g);
  ugs::Rng rng(1);
  std::vector<char> present;
  for (auto _ : state) {
    sampler.Sample(&rng, &present);
    benchmark::DoNotOptimize(present.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_SkipSampleWorld)->Arg(1000)->Arg(4000);

void BM_BackboneBgi(benchmark::State& state) {
  const ugs::UncertainGraph& g =
      BenchGraph(static_cast<std::size_t>(state.range(0)), 16.0);
  ugs::BackboneOptions options;
  for (auto _ : state) {
    ugs::Rng rng(7);
    auto b = ugs::BuildBackbone(g, 0.32, options, &rng);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_BackboneBgi)->Arg(1000)->Arg(4000);

void BM_GdbSweep(benchmark::State& state) {
  const ugs::UncertainGraph& g =
      BenchGraph(static_cast<std::size_t>(state.range(0)), 16.0);
  ugs::Rng rng(7);
  ugs::BackboneOptions options;
  auto backbone = ugs::BuildBackbone(g, 0.32, options, &rng);
  ugs::GdbOptions gdb;
  gdb.max_sweeps = 1;
  gdb.tolerance = 0.0;
  for (auto _ : state) {
    ugs::SparseState sparse_state(g, backbone.value());
    ugs::RunGdb(&sparse_state, gdb);
    benchmark::DoNotOptimize(sparse_state.TotalMass());
  }
}
BENCHMARK(BM_GdbSweep)->Arg(1000)->Arg(4000);

void BM_EmdIteration(benchmark::State& state) {
  const ugs::UncertainGraph& g =
      BenchGraph(static_cast<std::size_t>(state.range(0)), 16.0);
  ugs::Rng rng(7);
  ugs::BackboneOptions options;
  auto backbone = ugs::BuildBackbone(g, 0.32, options, &rng);
  ugs::EmdOptions emd;
  emd.max_iterations = 1;
  for (auto _ : state) {
    ugs::SparseState sparse_state(g, backbone.value());
    ugs::RunEmd(&sparse_state, emd);
    benchmark::DoNotOptimize(sparse_state.TotalMass());
  }
}
BENCHMARK(BM_EmdIteration)->Arg(1000)->Arg(4000);

void BM_LpAssign(benchmark::State& state) {
  const ugs::UncertainGraph& g =
      BenchGraph(static_cast<std::size_t>(state.range(0)), 16.0);
  ugs::Rng rng(7);
  ugs::BackboneOptions options;
  auto backbone = ugs::BuildBackbone(g, 0.32, options, &rng);
  for (auto _ : state) {
    auto p = ugs::SolveDegreeLp(g, backbone.value());
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_LpAssign)->Arg(500)->Arg(1000);

void BM_NiSparsify(benchmark::State& state) {
  const ugs::UncertainGraph& g =
      BenchGraph(static_cast<std::size_t>(state.range(0)), 16.0);
  for (auto _ : state) {
    ugs::Rng rng(7);
    auto r = ugs::NiSparsify(g, 0.32, {}, &rng);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_NiSparsify)->Arg(1000);

void BM_IndexedHeapUpdate(benchmark::State& state) {
  const std::size_t n = 10000;
  ugs::IndexedMaxHeap heap(n);
  ugs::Rng rng(1);
  for (std::uint32_t i = 0; i < n; ++i) {
    heap.Push(i, rng.NextDouble());
  }
  for (auto _ : state) {
    auto key = static_cast<std::uint32_t>(rng.NextIndex(n));
    heap.Update(key, rng.NextDouble());
    benchmark::DoNotOptimize(heap.Top());
  }
}
BENCHMARK(BM_IndexedHeapUpdate);

void BM_PageRankWorld(benchmark::State& state) {
  const ugs::UncertainGraph& g = BenchGraph(2000, 16.0);
  ugs::Rng rng(1);
  std::vector<char> present;
  ugs::SampleWorld(g, &rng, &present);
  for (auto _ : state) {
    auto pr = ugs::PageRankOnWorld(g, present);
    benchmark::DoNotOptimize(pr.data());
  }
}
BENCHMARK(BM_PageRankWorld);

void BM_BfsWorld(benchmark::State& state) {
  const ugs::UncertainGraph& g = BenchGraph(2000, 16.0);
  ugs::Rng rng(1);
  std::vector<char> present;
  ugs::SampleWorld(g, &rng, &present);
  std::vector<int> dist;
  for (auto _ : state) {
    ugs::BfsOnWorld(g, present, 0, &dist);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_BfsWorld);

}  // namespace

BENCHMARK_MAIN();
