// Figure 12: relative variance sigma^2(G')/sigma^2(G) of the Monte-Carlo
// estimators for PR / SP / RL / CC versus alpha, on the Flickr-like and
// Twitter-like datasets (8 panels in the paper).
//
// Protocol (Section 6.3): each estimator is run R times with N sampled
// worlds each; the unbiased variance across runs is computed per unit
// (vertex or pair) and averaged; the figure reports the ratio to the
// original graph's variance. Paper uses R = 100, N = 500; defaults here
// are scaled down and printed.
//
// Paper shape: EMD/GDB reduce the variance by up to several orders of
// magnitude (entropy reduction -> many deterministic edges), while NI
// and SS often sit at or above 1. The GDB/EMD ratio drifts up as alpha
// grows (fewer probability-1 edges).

#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/variance.h"
#include "query/clustering.h"
#include "query/pagerank.h"
#include "query/reliability.h"
#include "query/shortest_path.h"
#include "sparsify/sparsifier.h"

namespace {

struct VarianceProtocol {
  int runs;
  int worlds;
  std::vector<ugs::VertexPair> pairs;
};

/// Per-unit mean over valid samples, as the run estimate.
std::vector<double> Means(const ugs::McSamples& samples) {
  std::vector<double> out(samples.num_units);
  for (std::size_t u = 0; u < samples.num_units; ++u) {
    out[u] = samples.UnitMean(u);
  }
  return out;
}

/// The four query estimators' mean variance on one graph.
struct QueryVariances {
  double pr, sp, rl, cc;
};

QueryVariances MeasureVariances(const ugs::UncertainGraph& graph,
                                const VarianceProtocol& protocol,
                                std::uint64_t seed) {
  QueryVariances v{};
  ugs::Rng r1(seed + 1), r2(seed + 2), r3(seed + 3), r4(seed + 4);
  v.pr = ugs::MeanEstimatorVariance(
      [&](ugs::Rng* r) {
        return Means(ugs::McPageRank(graph, protocol.worlds, r));
      },
      protocol.runs, &r1);
  v.sp = ugs::MeanEstimatorVariance(
      [&](ugs::Rng* r) {
        return Means(
            ugs::McShortestPath(graph, protocol.pairs, protocol.worlds, r));
      },
      protocol.runs, &r2);
  v.rl = ugs::MeanEstimatorVariance(
      [&](ugs::Rng* r) {
        return Means(
            ugs::McReliability(graph, protocol.pairs, protocol.worlds, r));
      },
      protocol.runs, &r3);
  v.cc = ugs::MeanEstimatorVariance(
      [&](ugs::Rng* r) {
        return Means(ugs::McClusteringCoefficient(graph, protocol.worlds, r));
      },
      protocol.runs, &r4);
  return v;
}

std::string Ratio(double sparse, double original) {
  if (original <= 0.0) return "n/a";
  return ugs::FormatSci(sparse / original);
}

void Panel(const ugs::UncertainGraph& graph, const ugs::BenchConfig& config,
           const char* dataset) {
  const std::vector<double> alphas = ugs::PaperAlphas();
  const std::vector<std::string> methods = {"NI", "SS", "GDB", "EMD"};

  VarianceProtocol protocol;
  protocol.runs = config.Samples(16, 6);
  protocol.worlds = config.Samples(30, 10);
  ugs::Rng pair_rng(config.seed + 500);
  protocol.pairs = ugs::SampleDistinctPairs(
      graph.num_vertices(), config.Samples(60, 15), &pair_rng);

  std::printf("\n[%s] R=%d runs, N=%d worlds, %zu pairs\n", dataset,
              protocol.runs, protocol.worlds, protocol.pairs.size());
  QueryVariances base = MeasureVariances(graph, protocol, config.seed + 900);

  std::vector<std::string> headers{"method/query"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable table(headers);

  for (const std::string& name : methods) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) std::abort();
    std::vector<std::string> pr_row{name + " PR"};
    std::vector<std::string> sp_row{name + " SP"};
    std::vector<std::string> rl_row{name + " RL"};
    std::vector<std::string> cc_row{name + " CC"};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      QueryVariances sparse =
          MeasureVariances(out.graph, protocol, config.seed + 901);
      pr_row.push_back(Ratio(sparse.pr, base.pr));
      sp_row.push_back(Ratio(sparse.sp, base.sp));
      rl_row.push_back(Ratio(sparse.rl, base.rl));
      cc_row.push_back(Ratio(sparse.cc, base.cc));
    }
    table.AddRow(std::move(pr_row));
    table.AddRow(std::move(sp_row));
    table.AddRow(std::move(rl_row));
    table.AddRow(std::move(cc_row));
  }
  std::printf("relative variance of PR / SP / RL / CC (%s):\n", dataset);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Figure 12: relative MC-estimator variance");
  {
    ugs::UncertainGraph flickr = ugs::bench::LoadDataset("Flickr", config);
    Panel(flickr, config, "Flickr-like");
  }
  {
    ugs::UncertainGraph twitter = ugs::bench::LoadDataset("Twitter", config);
    Panel(twitter, config, "Twitter-like");
  }
  std::printf(
      "\npaper Figure 12 shape: GDB/EMD ratios << 1 (orders of magnitude\n"
      "at small alpha, rising with alpha); NI/SS at or above 1 on most\n"
      "queries.\n");
  return 0;
}
