// Figure 10: earth mover's distance D_em between the Monte-Carlo result
// distributions on the original and sparsified graphs, for the four
// evaluation queries -- PageRank (PR), shortest-path distance (SP),
// reliability (RL), clustering coefficient (CC) -- versus alpha, on the
// Flickr-like and Twitter-like datasets (8 panels in the paper).
//
// Paper protocol: 500 sampled worlds per graph, CC/PR on all vertices,
// SP/RL on 1000 random pairs. We scale the sample counts down by default
// (printed below) -- raise --scale / lower --quick to trade time for
// resolution.
//
// Paper shape: GDB/EMD below NI/SS almost everywhere, often by a wide
// margin; SS worst even on SP (its own target metric) because it never
// redistributes probability; NI decent on CC only; EMD wins at large
// alpha, GDB preferable at alpha = 8%.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/emd_distance.h"
#include "query/clustering.h"
#include "query/pagerank.h"
#include "query/reliability.h"
#include "query/shortest_path.h"
#include "sparsify/sparsifier.h"

namespace {

struct QueryBaselines {
  ugs::McSamples pr, sp, rl, cc;
  std::vector<ugs::VertexPair> pairs;
};

QueryBaselines EvaluateQueries(const ugs::UncertainGraph& graph,
                               const std::vector<ugs::VertexPair>& pairs,
                               int worlds, std::uint64_t seed) {
  QueryBaselines q;
  q.pairs = pairs;
  ugs::Rng r1(seed + 1), r2(seed + 2), r3(seed + 3), r4(seed + 4);
  q.pr = ugs::McPageRank(graph, worlds, &r1);
  q.sp = ugs::McShortestPath(graph, pairs, worlds, &r2);
  q.rl = ugs::McReliability(graph, pairs, worlds, &r3);
  q.cc = ugs::McClusteringCoefficient(graph, worlds, &r4);
  return q;
}

void Panel(const ugs::UncertainGraph& graph, const ugs::BenchConfig& config,
           const char* dataset) {
  const std::vector<double> alphas = ugs::PaperAlphas();
  const std::vector<std::string> methods = {"NI", "SS", "GDB", "EMD"};
  const int worlds = config.Samples(100, 25);
  const int num_pairs = config.Samples(100, 25);

  ugs::Rng pair_rng(config.seed + 500);
  std::vector<ugs::VertexPair> pairs =
      ugs::SampleDistinctPairs(graph.num_vertices(), num_pairs, &pair_rng);
  std::printf("\n[%s] %d worlds, %d pairs\n", dataset, worlds, num_pairs);
  QueryBaselines base =
      EvaluateQueries(graph, pairs, worlds, config.seed + 900);

  std::vector<std::string> headers{"method/query"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable table(headers);

  for (const std::string& name : methods) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) std::abort();
    std::vector<std::string> pr_row{name + " PR"};
    std::vector<std::string> sp_row{name + " SP"};
    std::vector<std::string> rl_row{name + " RL"};
    std::vector<std::string> cc_row{name + " CC"};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      QueryBaselines sparse = EvaluateQueries(out.graph, pairs, worlds,
                                              config.seed + 901);
      pr_row.push_back(ugs::FormatSci(ugs::MeanUnitEmd(base.pr, sparse.pr)));
      sp_row.push_back(ugs::FormatSci(ugs::MeanUnitEmd(base.sp, sparse.sp)));
      rl_row.push_back(ugs::FormatSci(ugs::MeanUnitEmd(base.rl, sparse.rl)));
      cc_row.push_back(ugs::FormatSci(ugs::MeanUnitEmd(base.cc, sparse.cc)));
    }
    table.AddRow(std::move(pr_row));
    table.AddRow(std::move(sp_row));
    table.AddRow(std::move(rl_row));
    table.AddRow(std::move(cc_row));
  }
  std::printf("D_em of PR / SP / RL / CC (%s):\n", dataset);
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Figure 10: D_em of PR/SP/RL/CC (real datasets)");
  {
    ugs::UncertainGraph flickr = ugs::bench::LoadDataset("Flickr", config);
    Panel(flickr, config, "Flickr-like");
  }
  {
    ugs::UncertainGraph twitter = ugs::bench::LoadDataset("Twitter", config);
    Panel(twitter, config, "Twitter-like");
  }
  std::printf(
      "\npaper Figure 10 shape: GDB/EMD below the benchmarks with few\n"
      "exceptions; SS worst on SP despite being the spanner method; NI\n"
      "good on CC only; EMD wins at high alpha, GDB at alpha = 8%%.\n");
  return 0;
}
