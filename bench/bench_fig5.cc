// Figure 5: effect of the entropy parameter h on GDB (Flickr reduced):
// (a) MAE of the absolute degree discrepancy and (b) relative entropy
// H(G')/H(G), as functions of alpha for h in {0, 0.01, 0.05, 0.1, 0.5, 1}.
//
// Paper shape: h = 0 is worst on delta_A (it freezes entropy-raising
// steps) but best on entropy; h = 1 is the reverse; intermediate values
// span the two extremes, with h = 0.05 the balanced default.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/discrepancy.h"
#include "sparsify/sparsifier.h"

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Figure 5: entropy parameter h sweep on GDB");
  ugs::UncertainGraph graph = ugs::bench::LoadDataset("FlickrReduced",
                                                      config);
  const std::vector<double> alphas = ugs::PaperAlphas();
  const std::vector<double> hs = {0.0, 0.01, 0.05, 0.1, 0.5, 1.0};

  std::vector<std::string> headers{"h"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable mae_table(headers);
  ugs::ReportTable entropy_table(headers);

  for (double h : hs) {
    auto method = ugs::MakeSparsifierByName("GDBA", h);
    if (!method.ok()) return 1;
    std::vector<std::string> mae_row{ugs::FormatFixed(h, 2)};
    std::vector<std::string> entropy_row{ugs::FormatFixed(h, 2)};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      mae_row.push_back(ugs::FormatSci(ugs::DegreeDiscrepancyMae(
          graph, out.graph, ugs::DiscrepancyType::kAbsolute)));
      entropy_row.push_back(
          ugs::FormatSci(ugs::RelativeEntropy(graph, out.graph)));
    }
    mae_table.AddRow(std::move(mae_row));
    entropy_table.AddRow(std::move(entropy_row));
  }

  std::printf("\n(a) MAE of absolute degree discrepancy vs alpha:\n");
  mae_table.Print();
  std::printf("\n(b) relative entropy H(G')/H(G) vs alpha:\n");
  entropy_table.Print();
  std::printf(
      "\npaper Figure 5 shape: delta_A MAE decreases with h (h=0 worst,\n"
      "h=1 best); relative entropy increases with h (h=0 best, h=1\n"
      "worst); h=0.05 balances both.\n");
  return 0;
}
