// Figure 11: earth mover's distance D_em of PageRank and shortest-path
// distance versus graph density (synthetic sweep) at alpha = 16%.
//
// Paper shape: proposed methods below the benchmarks everywhere; PR
// error grows with density (mirrors the degree MAE of Figure 7(a)); SP
// error falls with density (denser graphs offer alternative short
// paths); RL is ~0 for everyone on dense graphs (hence not plotted).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/emd_distance.h"
#include "query/pagerank.h"
#include "query/shortest_path.h"
#include "sparsify/sparsifier.h"

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Figure 11: D_em of PR and SP vs density (synthetic)");
  const double alpha = 0.16;
  const std::vector<int> densities = ugs::PaperDensities();
  const std::vector<std::string> methods = {"NI", "SS", "GDB", "EMD"};
  const int worlds = config.Samples(80, 20);
  const int num_pairs = config.Samples(80, 20);

  std::vector<ugs::UncertainGraph> graphs;
  for (int density : densities) {
    graphs.push_back(ugs::bench::LoadDensityGraph(density, config));
  }
  ugs::Rng pair_rng(config.seed + 500);
  std::vector<ugs::VertexPair> pairs = ugs::SampleDistinctPairs(
      graphs[0].num_vertices(), num_pairs, &pair_rng);

  std::vector<std::string> headers{"method"};
  for (int d : densities) headers.push_back(std::to_string(d) + "%");
  ugs::ReportTable pr_table(headers);
  ugs::ReportTable sp_table(headers);

  for (const std::string& name : methods) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) return 1;
    std::vector<std::string> pr_row{name};
    std::vector<std::string> sp_row{name};
    for (const ugs::UncertainGraph& graph : graphs) {
      ugs::Rng b1(config.seed + 1), b2(config.seed + 2);
      ugs::McSamples base_pr = ugs::McPageRank(graph, worlds, &b1);
      ugs::McSamples base_sp =
          ugs::McShortestPath(graph, pairs, worlds, &b2);
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      ugs::Rng s1(config.seed + 3), s2(config.seed + 4);
      ugs::McSamples sparse_pr = ugs::McPageRank(out.graph, worlds, &s1);
      ugs::McSamples sparse_sp =
          ugs::McShortestPath(out.graph, pairs, worlds, &s2);
      pr_row.push_back(
          ugs::FormatSci(ugs::MeanUnitEmd(base_pr, sparse_pr)));
      sp_row.push_back(
          ugs::FormatSci(ugs::MeanUnitEmd(base_sp, sparse_sp)));
    }
    pr_table.AddRow(std::move(pr_row));
    sp_table.AddRow(std::move(sp_row));
  }

  std::printf("\n(a) D_em of PageRank vs density (alpha = 16%%):\n");
  pr_table.Print();
  std::printf("\n(b) D_em of shortest-path distance vs density:\n");
  sp_table.Print();
  std::printf(
      "\npaper Figure 11 shape: proposed methods below benchmarks; PR\n"
      "error grows with density, SP error shrinks with density.\n");
  return 0;
}
