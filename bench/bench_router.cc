// Sharded-tier round-trip bench: starts two in-process Servers over a
// temp graph directory and a Router in front of them, fires a fixed
// request set through the router at a ladder of routing configs
// (pinned, replicated, raced, raced+verified), and verifies every
// routed response is bit-identical to a local GraphSession::Run (the
// determinism contract the tier rests on). The direct-to-shard round
// trip is the yardstick: the interesting number is the router hop's
// overhead, config by config. Writes BENCH_router.json so future
// routing PRs (connection pooling, multi-reactor, smarter racing) have
// a trajectory to diff.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "graph/graph_io.h"
#include "query/graph_session.h"
#include "router/router.h"
#include "service/client.h"
#include "service/server.h"
#include "service/wire.h"
#include "util/timer.h"

namespace {

struct RunResult {
  double wall_ms = 0.0;
  bool identical = true;
};

/// Fires `requests` at `port` across `num_clients` concurrent
/// connections; request i's response is compared against expected[i].
RunResult FireRequests(int port, const std::string& graph_id,
                       const std::vector<ugs::QueryRequest>& requests,
                       const std::vector<ugs::QueryResult>& expected,
                       int num_clients) {
  std::atomic<std::size_t> next{0};
  std::atomic<bool> identical{true};
  ugs::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    clients.emplace_back([&] {
      ugs::Result<ugs::Client> client =
          ugs::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        identical.store(false);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests.size()) break;
        ugs::Result<ugs::QueryResult> result =
            client->Query(graph_id, requests[i]);
        if (!result.ok() || !ugs::PayloadEquals(*result, expected[i])) {
          identical.store(false);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  RunResult run;
  run.wall_ms = timer.ElapsedMillis();
  run.identical = identical.load();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Sharded tier: routed round-trip overhead (ugs_router)");

  char dir_template[] = "/tmp/ugs_bench_router_XXXXXX";
  if (mkdtemp(dir_template) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string graph_dir = dir_template;
  ugs::UncertainGraph graph = ugs::bench::LoadDataset("Twitter", config);
  if (!ugs::SaveEdgeList(graph, graph_dir + "/twitter.txt").ok()) {
    std::fprintf(stderr, "cannot write %s/twitter.txt\n", graph_dir.c_str());
    return 1;
  }

  const int num_samples = config.Samples(100, 16);
  const int num_requests = config.Samples(48, 12);
  std::vector<ugs::QueryRequest> requests;
  requests.reserve(static_cast<std::size_t>(num_requests));
  ugs::Rng pair_rng(config.seed + 11);
  for (int i = 0; i < num_requests; ++i) {
    ugs::QueryRequest request;
    request.query = "reliability";
    request.pairs =
        ugs::SampleDistinctPairs(graph.num_vertices(), 4, &pair_rng);
    request.num_samples = num_samples;
    request.seed = config.seed + static_cast<std::uint64_t>(i);
    requests.push_back(std::move(request));
  }

  // Local reference: the determinism baseline every routed response is
  // held to.
  ugs::GraphSession local(graph);
  std::vector<ugs::QueryResult> expected;
  expected.reserve(requests.size());
  for (const ugs::QueryRequest& request : requests) {
    expected.push_back(ugs::MustQuery(local, request));
  }

  // Two shards over the same directory, reused across every config row
  // (registry and caches stay warm -- the rows compare routing, not
  // graph loads).
  std::vector<std::unique_ptr<ugs::Server>> shards;
  for (int i = 0; i < 2; ++i) {
    ugs::ServerOptions options;
    options.port = 0;
    options.num_workers = 2;
    options.registry.graph_dir = graph_dir;
    auto shard = std::make_unique<ugs::Server>(options);
    ugs::Status started = shard->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    shards.push_back(std::move(shard));
  }

  // Direct-to-shard yardstick (same warm-up discipline as the rows).
  FireRequests(shards[0]->port(), "twitter", {requests[0]}, {expected[0]},
               1);
  RunResult direct = FireRequests(shards[0]->port(), "twitter", requests,
                                  expected, 2);

  struct ConfigRow {
    const char* name;
    std::size_t replication;
    int race;
    bool verify;
  };
  const ConfigRow rows[] = {
      {"pinned (R=1)", 1, 1, false},
      {"replicated (R=2)", 2, 1, false},
      {"raced (R=2, race=2)", 2, 2, false},
      {"raced+verify", 2, 2, true},
  };

  ugs::BenchJsonWriter json;
  ugs::ReportTable table(
      {"config", "wall ms", "req/s", "vs direct", "identical"});
  bool all_identical = direct.identical;
  for (const ConfigRow& row : rows) {
    ugs::RouterOptions options;
    options.port = 0;
    options.num_workers = 4;
    options.replication = row.replication;
    options.race = row.race;
    options.race_verify = row.verify;
    for (const std::unique_ptr<ugs::Server>& shard : shards) {
      options.shards.push_back({"127.0.0.1", shard->port()});
    }
    ugs::Router router(std::move(options));
    ugs::Status started = router.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    // Warm-up: routes once so the router's connection pool is primed.
    FireRequests(router.port(), "twitter", {requests[0]}, {expected[0]}, 1);
    RunResult run =
        FireRequests(router.port(), "twitter", requests, expected, 2);
    router.Stop();
    all_identical = all_identical && run.identical;

    const double seconds = run.wall_ms / 1e3;
    const double requests_per_sec =
        static_cast<double>(num_requests) / seconds;
    const double vs_direct =
        direct.wall_ms > 0.0 ? run.wall_ms / direct.wall_ms : 1.0;
    table.AddRow({row.name, ugs::FormatFixed(run.wall_ms, 1),
                  ugs::FormatFixed(requests_per_sec, 1),
                  ugs::FormatFixed(vs_direct, 2),
                  run.identical ? "yes" : "NO"});
    json.Add({std::string("bench_router/") + row.name,
              "Twitter",
              4,
              run.wall_ms,
              static_cast<double>(num_requests) * num_samples / seconds,
              {{"requests_per_sec", requests_per_sec},
               {"num_requests", static_cast<double>(num_requests)},
               {"num_samples", static_cast<double>(num_samples)},
               {"direct_ms", direct.wall_ms},
               {"overhead_vs_direct", vs_direct},
               {"replication", static_cast<double>(row.replication)},
               {"race", static_cast<double>(row.race)},
               {"identical_to_local", run.identical ? 1.0 : 0.0}}});
  }
  table.Print();
  std::printf("direct to one shard: %s ms for %d requests\n",
              ugs::FormatFixed(direct.wall_ms, 1).c_str(), num_requests);

  for (std::unique_ptr<ugs::Server>& shard : shards) shard->Stop();
  std::remove((graph_dir + "/twitter.txt").c_str());
  ::rmdir(graph_dir.c_str());

  const std::string out_path = "BENCH_router.json";
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: a routed response differed from "
                 "the local run\n");
    return 1;
  }
  return 0;
}
