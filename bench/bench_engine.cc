// SampleEngine throughput bench: the end-to-end perf trajectory for the
// parallel Monte-Carlo possible-world engine. Runs the reliability and
// PageRank evaluators over the Twitter-like stand-in at a ladder of
// thread counts, verifies the bit-identical-results determinism contract
// across the ladder, and writes BENCH_engine.json with (bench, dataset,
// threads, wall ms, samples/sec, speedup vs 1 thread) so future PRs can
// diff the trajectory. The 1-thread row IS the serial path: a 1-thread
// engine runs the sample loop inline with zero synchronization.
//
// The overlap rows measure the executor's reason to exist: two sampled
// requests on ONE engine, run back to back (serialized) vs driven by two
// concurrent threads (interleaved task groups on the shared pool). On a
// multi-core box the interleaved row wins; on a 1-CPU container flat is
// fine -- the asserted part is that both runs are bit-identical.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "query/pagerank.h"
#include "query/reliability.h"
#include "query/sample_engine.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

struct Measurement {
  double wall_ms = 0.0;
  ugs::McSamples samples;
};

using QueryFn = std::function<ugs::McSamples(const ugs::SampleEngine&,
                                             ugs::Rng*)>;

Measurement Measure(const QueryFn& query, const ugs::SampleEngine& engine,
                    std::uint64_t seed) {
  // Warm-up run (untimed) so pool spin-up and page faults don't pollute
  // the measurement, then one timed run.
  {
    ugs::Rng rng(seed);
    query(engine, &rng);
  }
  ugs::Rng rng(seed);
  ugs::Timer timer;
  Measurement m;
  m.samples = query(engine, &rng);
  m.wall_ms = timer.ElapsedMillis();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv,
      "SampleEngine: parallel possible-world sampling throughput");

  ugs::UncertainGraph graph = ugs::bench::LoadDataset("Twitter", config);
  const int num_samples = config.Samples(400, 40);
  const int num_pairs = config.Samples(64, 16);

  ugs::Rng pair_rng(config.seed + 99);
  std::vector<ugs::VertexPair> pairs =
      ugs::SampleDistinctPairs(graph.num_vertices(), num_pairs, &pair_rng);

  std::vector<std::pair<std::string, QueryFn>> queries;
  queries.emplace_back(
      "reliability", [&](const ugs::SampleEngine& engine, ugs::Rng* rng) {
        return ugs::McReliability(graph, pairs, num_samples, rng, engine);
      });
  queries.emplace_back(
      "pagerank", [&](const ugs::SampleEngine& engine, ugs::Rng* rng) {
        return ugs::McPageRank(graph, num_samples, rng, {}, engine);
      });

  // Thread ladder: 1 (the serial path), 2, 4, the hardware width, and
  // whatever --threads/UGS_THREADS asked for.
  std::vector<int> ladder = {1, 2, 4, ugs::ThreadPool::HardwareThreads()};
  if (config.threads > 0) ladder.push_back(config.threads);
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());

  ugs::BenchJsonWriter json;
  ugs::ReportTable table({"query", "threads", "wall ms", "samples/s",
                          "speedup", "identical"});
  bool deterministic = true;
  for (const auto& [name, query] : queries) {
    double serial_ms = 0.0;
    const ugs::McSamples* reference = nullptr;
    std::vector<Measurement> runs;
    runs.reserve(ladder.size());
    for (int threads : ladder) {
      ugs::SampleEngine engine(
          ugs::SampleEngineOptions{.num_threads = threads});
      runs.push_back(Measure(query, engine, config.seed));
      const Measurement& m = runs.back();
      if (threads == 1) {
        serial_ms = m.wall_ms;
        reference = &m.samples;
      }
      const bool identical =
          reference == nullptr || *reference == m.samples;
      deterministic = deterministic && identical;
      const double samples_per_sec =
          static_cast<double>(num_samples) / (m.wall_ms / 1e3);
      const double speedup = serial_ms > 0.0 ? serial_ms / m.wall_ms : 1.0;
      table.AddRow({name, std::to_string(threads),
                    ugs::FormatFixed(m.wall_ms, 1),
                    ugs::FormatFixed(samples_per_sec, 1),
                    ugs::FormatFixed(speedup, 2), identical ? "yes" : "NO"});
      json.Add({"bench_engine/" + name,
                "Twitter",
                threads,
                m.wall_ms,
                samples_per_sec,
                {{"speedup_vs_1t", speedup},
                 {"num_samples", static_cast<double>(num_samples)},
                 {"identical_to_1t", identical ? 1.0 : 0.0}}});
    }
  }
  table.Print();

  // --- Overlapping requests on one engine: serialized vs interleaved.
  {
    const int overlap_threads =
        std::max(2, ugs::ThreadPool::HardwareThreads());
    ugs::SampleEngine engine(
        ugs::SampleEngineOptions{.num_threads = overlap_threads});
    // Two independent reliability requests (distinct seeds), as a
    // pipelining server would see them.
    const std::uint64_t seeds[2] = {config.seed + 1, config.seed + 2};
    auto run_one = [&](std::uint64_t seed) {
      ugs::Rng rng(seed);
      return ugs::McReliability(graph, pairs, num_samples, &rng, engine);
    };
    // Warm-up, and the determinism reference.
    ugs::McSamples reference[2] = {run_one(seeds[0]), run_one(seeds[1])};

    ugs::Timer serialized_timer;
    ugs::McSamples serial[2] = {run_one(seeds[0]), run_one(seeds[1])};
    const double serialized_ms = serialized_timer.ElapsedMillis();

    ugs::McSamples overlapped[2];
    ugs::Timer overlapped_timer;
    {
      std::thread second([&] { overlapped[1] = run_one(seeds[1]); });
      overlapped[0] = run_one(seeds[0]);
      second.join();
    }
    const double overlapped_ms = overlapped_timer.ElapsedMillis();

    const bool identical = serial[0] == reference[0] &&
                           serial[1] == reference[1] &&
                           overlapped[0] == reference[0] &&
                           overlapped[1] == reference[1];
    deterministic = deterministic && identical;
    const double speedup =
        overlapped_ms > 0.0 ? serialized_ms / overlapped_ms : 1.0;
    std::printf("overlap: serialized %s ms, interleaved %s ms "
                "(x%s, %d threads)%s\n",
                ugs::FormatFixed(serialized_ms, 1).c_str(),
                ugs::FormatFixed(overlapped_ms, 1).c_str(),
                ugs::FormatFixed(speedup, 2).c_str(), overlap_threads,
                identical ? "" : "  NOT IDENTICAL");
    const double total_samples = 2.0 * num_samples;
    json.Add({"bench_engine/overlap_serialized",
              "Twitter",
              overlap_threads,
              serialized_ms,
              total_samples / (serialized_ms / 1e3),
              {{"num_requests", 2.0},
               {"identical", identical ? 1.0 : 0.0}}});
    json.Add({"bench_engine/overlap_interleaved",
              "Twitter",
              overlap_threads,
              overlapped_ms,
              total_samples / (overlapped_ms / 1e3),
              {{"num_requests", 2.0},
               {"speedup_vs_serialized", speedup},
               {"identical", identical ? 1.0 : 0.0}}});
  }

  const std::string out_path = "BENCH_engine.json";
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  if (!deterministic) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: results differ across thread "
                 "counts\n");
    return 1;
  }
  return 0;
}
