// Figure 7: MAE of the absolute degree discrepancy delta_A(u) and the
// sampled cut discrepancy delta_A(S) versus graph density (15/30/50/90 %
// of the complete graph) on the synthetic datasets, at fixed alpha = 16%.
//
// Paper shape: all methods degrade as density grows (more probability
// mass must be eliminated at fixed alpha); SS grows linearly with |E|
// (no redistribution), NI is smaller, EMD grows most slowly.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/discrepancy.h"
#include "sparsify/sparsifier.h"

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Figure 7: discrepancy MAE vs density (synthetic)");
  const double alpha = 0.16;
  const std::vector<int> densities = ugs::PaperDensities();
  const std::vector<std::string> methods = {"NI", "SS", "GDB", "EMD"};

  ugs::CutSampleOptions cuts;
  cuts.num_k_values = config.Samples(12, 5);
  cuts.sets_per_k = config.Samples(32, 8);

  std::vector<std::string> headers{"method"};
  for (int d : densities) headers.push_back(std::to_string(d) + "%");
  ugs::ReportTable degree_table(headers);
  ugs::ReportTable cut_table(headers);

  std::vector<ugs::UncertainGraph> graphs;
  graphs.reserve(densities.size());
  for (int density : densities) {
    graphs.push_back(ugs::bench::LoadDensityGraph(density, config));
  }

  for (const std::string& name : methods) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) return 1;
    std::vector<std::string> degree_row{name};
    std::vector<std::string> cut_row{name};
    for (const ugs::UncertainGraph& graph : graphs) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      degree_row.push_back(ugs::FormatFixed(
          ugs::DegreeDiscrepancyMae(graph, out.graph,
                                    ugs::DiscrepancyType::kAbsolute),
          3));
      ugs::Rng cut_rng(config.seed + 1000);
      cut_row.push_back(ugs::FormatFixed(
          ugs::CutDiscrepancyMae(graph, out.graph, cuts, &cut_rng), 1));
    }
    degree_table.AddRow(std::move(degree_row));
    cut_table.AddRow(std::move(cut_row));
  }

  std::printf("\n(a) MAE of delta_A(u) vs density (alpha = 16%%):\n");
  degree_table.Print();
  std::printf("\n(b) MAE of delta_A(S) vs density (alpha = 16%%):\n");
  cut_table.Print();
  std::printf(
      "\npaper Figure 7 shape: errors increase with density for all\n"
      "methods; SS worst (linear in |E|), then NI, then GDB; EMD\n"
      "smoothest.\n");
  return 0;
}
