#ifndef UGS_BENCH_BENCH_COMMON_H_
#define UGS_BENCH_BENCH_COMMON_H_

// Shared dataset construction and reporting for the per-figure bench
// binaries. Every binary prints the stand-in's measured Table-1-style
// stats next to the paper's numbers so the dataset substitution
// (DESIGN.md Section 4) stays auditable.

#include <cstdio>
#include <string>

#include "eval/experiment.h"
#include "eval/report.h"
#include "gen/datasets.h"
#include "graph/graph_stats.h"

namespace ugs {
namespace bench {

inline UncertainGraph LoadDataset(const std::string& name,
                                  const BenchConfig& config) {
  UncertainGraph g;
  std::string paper_line;
  if (name == "Flickr") {
    g = MakeFlickrLike(config.scale, config.seed + 42);
    paper_line = "paper Flickr: |V|=78322 |E|=10171509 E/V=129.9 "
                 "E[p]=0.09 E[d]=22.9";
  } else if (name == "Twitter") {
    g = MakeTwitterLike(config.scale, config.seed + 43);
    paper_line = "paper Twitter: |V|=26362 |E|=663766 E/V=25.2 "
                 "E[p]=0.15 E[d]=7.7";
  } else if (name == "FlickrReduced") {
    g = MakeFlickrReduced(config.scale, config.seed + 44);
    paper_line = "paper Flickr-reduced: |V|=5000 |E|=655275 (Forest Fire)";
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    std::abort();
  }
  std::printf("%s\n", FormatStats(name, ComputeStats(g)).c_str());
  std::printf("  (%s)\n", paper_line.c_str());
  return g;
}

inline UncertainGraph LoadDensityGraph(int density_percent,
                                       const BenchConfig& config) {
  std::size_t n = static_cast<std::size_t>(1000 * config.scale);
  if (n < 64) n = 64;
  UncertainGraph g = MakeDensitySweepGraph(density_percent, n,
                                           config.seed + 45);
  std::printf("%s\n",
              FormatStats("density-" + std::to_string(density_percent),
                          ComputeStats(g)).c_str());
  return g;
}

/// "8%", "16%", ... labels for report columns.
inline std::string AlphaLabel(double alpha) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%g%%", alpha * 100.0);
  return buf;
}

}  // namespace bench
}  // namespace ugs

#endif  // UGS_BENCH_BENCH_COMMON_H_
