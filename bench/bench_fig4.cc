// Figure 4: (a) MAE of the sampled cut discrepancy delta_A(S) for the
// proposed variants, and (b) execution time of LP vs GDB vs EMD, both
// against the sparsification ratio, on the reduced Flickr testbed.
//
// Paper shape: GDBAn far worse than everything for alpha > 8%; the other
// variants cluster together; LP is orders of magnitude slower than
// GDB/EMD, and EMD costs only slightly more than GDB.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/discrepancy.h"
#include "sparsify/sparsifier.h"

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv,
      "Figure 4: cut-discrepancy MAE and execution time (Flickr reduced)");
  ugs::UncertainGraph graph = ugs::bench::LoadDataset("FlickrReduced",
                                                      config);
  const std::vector<double> alphas = ugs::PaperAlphas();

  // ---- (a) MAE of delta_A(S) over sampled k-cuts. ----
  ugs::CutSampleOptions cuts;
  cuts.num_k_values = config.Samples(16, 6);
  cuts.sets_per_k = config.Samples(64, 16);

  const std::vector<std::string> variants = {"EMDR-t", "EMDA",  "GDBR-t",
                                             "GDBA",   "GDBA2", "GDBAn"};
  std::vector<std::string> headers{"variant"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable mae_table(headers);
  for (const std::string& variant : variants) {
    auto method = ugs::MakeSparsifierByName(variant);
    if (!method.ok()) return 1;
    std::vector<std::string> row{variant};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      ugs::Rng cut_rng(config.seed + 1000);  // Same cuts for all methods.
      row.push_back(ugs::FormatSci(
          ugs::CutDiscrepancyMae(graph, out.graph, cuts, &cut_rng)));
    }
    mae_table.AddRow(std::move(row));
  }
  std::printf("\n(a) MAE of cut discrepancy delta_A(S):\n");
  mae_table.Print();

  // ---- (b) execution time (seconds). ----
  ugs::ReportTable time_table(headers);
  for (std::string variant : {"LP", "GDBA", "EMDA"}) {
    auto method = ugs::MakeSparsifierByName(variant);
    if (!method.ok()) return 1;
    std::vector<std::string> row{variant == "GDBA" ? "GDB"
                                 : variant == "EMDA" ? "EMD"
                                                     : variant};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      row.push_back(ugs::FormatFixed(out.seconds, 3));
    }
    time_table.AddRow(std::move(row));
  }
  std::printf("\n(b) execution time (seconds):\n");
  time_table.Print();

  std::printf(
      "\npaper Figure 4 shape: (a) GDBAn worst for alpha > 8%%, others\n"
      "close; (b) LP slowest by 1-2 orders of magnitude, EMD slightly\n"
      "above GDB, all growing with alpha.\n");
  return 0;
}
