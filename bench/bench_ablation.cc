// Ablation studies for the design choices DESIGN.md calls out. Not a
// paper figure; complements the reproduction by quantifying:
//
//   A. Backbone construction: random vs Algorithm-1 spanning backbones,
//      and the spanning-fraction / forest-count knobs of BGI.
//   B. Entropy parameter h on EMD (the paper sweeps it on GDB only).
//   C. Representative instances [29, 30] vs sparsified graphs: degree
//      preservation and the inability to answer probabilistic queries.
//   D. Stratified vs plain Monte-Carlo estimation at equal budget, on
//      the original and the EMD-sparsified graph (the paper's [23]).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/discrepancy.h"
#include "metrics/variance.h"
#include "query/reliability.h"
#include "query/stratified.h"
#include "sparsify/representative.h"
#include "sparsify/sparsifier.h"
#include "util/union_find.h"

namespace {

void BackboneAblation(const ugs::UncertainGraph& graph,
                      const ugs::BenchConfig& config) {
  std::printf("\n[A] backbone construction (GDBA probability assignment, "
              "alpha = 0.32):\n");
  ugs::ReportTable table(
      {"backbone", "degree MAE", "entropy", "connected"});
  struct Case {
    std::string name;
    ugs::BackboneOptions options;
  };
  std::vector<Case> cases;
  {
    Case random;
    random.name = "random (MC sampling)";
    random.options.kind = ugs::BackboneKind::kRandom;
    cases.push_back(random);
  }
  for (double fraction : {0.25, 0.5, 0.75}) {
    Case c;
    c.name = "spanning f=" + ugs::FormatFixed(fraction, 2);
    c.options.kind = ugs::BackboneKind::kSpanning;
    c.options.spanning_fraction = fraction;
    cases.push_back(c);
  }
  {
    Case many;
    many.name = "spanning forests=12";
    many.options.kind = ugs::BackboneKind::kSpanning;
    many.options.max_spanning_forests = 12;
    cases.push_back(many);
  }
  for (const Case& c : cases) {
    ugs::GdbSparsifierOptions options;
    options.backbone = c.options;
    auto method = ugs::MakeGdbSparsifier(options);
    ugs::Rng rng(config.seed + 7);
    ugs::SparsifyOutput out = ugs::MustSparsify(*method, graph, 0.32, &rng);
    table.AddRow({c.name,
                  ugs::FormatSci(ugs::DegreeDiscrepancyMae(graph, out.graph)),
                  ugs::FormatFixed(ugs::RelativeEntropy(graph, out.graph), 3),
                  out.graph.IsStructurallyConnected() ? "yes" : "no"});
  }
  table.Print();
}

void EmdEntropyAblation(const ugs::UncertainGraph& graph,
                        const ugs::BenchConfig& config) {
  std::printf("\n[B] entropy parameter h on EMD (alpha = 0.32):\n");
  ugs::ReportTable table({"h", "degree MAE", "relative entropy"});
  for (double h : {0.0, 0.01, 0.05, 0.1, 0.5, 1.0}) {
    auto method = ugs::MakeSparsifierByName("EMDR-t", h);
    if (!method.ok()) std::abort();
    ugs::Rng rng(config.seed + 7);
    ugs::SparsifyOutput out =
        ugs::MustSparsify(**method, graph, 0.32, &rng);
    table.AddRow({ugs::FormatFixed(h, 2),
                  ugs::FormatSci(ugs::DegreeDiscrepancyMae(graph, out.graph)),
                  ugs::FormatSci(ugs::RelativeEntropy(graph, out.graph))});
  }
  table.Print();
}

void RepresentativeAblation(const ugs::UncertainGraph& graph,
                            const ugs::BenchConfig& config) {
  std::printf("\n[C] representative instances [29,30] vs sparsification:\n");
  ugs::Rng rng(config.seed + 11);
  std::vector<ugs::EdgeId> modal = ugs::ModalRepresentative(graph);
  std::vector<ugs::EdgeId> greedy =
      ugs::GreedyDegreeRepresentative(graph, &rng);
  auto emd = ugs::MakeSparsifierByName("EMD");
  if (!emd.ok()) std::abort();
  ugs::SparsifyOutput sparse =
      ugs::MustSparsify(**emd, graph, 0.32, &rng);

  // Degree preservation and probabilistic-query expressiveness: the mean
  // reliability of random pairs. A deterministic representative can only
  // answer 0 or 1 per pair, so its distribution over pairs is coarse.
  ugs::Rng qpair_rng(config.seed + 13);
  std::vector<ugs::VertexPair> pairs =
      ugs::SampleDistinctPairs(graph.num_vertices(), 8, &qpair_rng);
  auto mean_reliability = [&](const ugs::UncertainGraph& g) {
    ugs::Rng qrng(config.seed + 14);
    std::vector<double> rel = ugs::EstimateReliability(g, pairs, 120, &qrng);
    double sum = 0.0;
    for (double x : rel) sum += x;
    return sum / static_cast<double>(rel.size());
  };
  ugs::ReportTable table({"instance", "edges", "degree MAE",
                          "mean reliability (8 pairs)"});
  ugs::UncertainGraph modal_graph =
      ugs::MaterializeRepresentative(graph, modal);
  ugs::UncertainGraph greedy_graph =
      ugs::MaterializeRepresentative(graph, greedy);
  table.AddRow({"modal representative", std::to_string(modal.size()),
                ugs::FormatSci(ugs::RepresentativeDegreeMae(graph, modal)),
                ugs::FormatFixed(mean_reliability(modal_graph), 3)});
  table.AddRow({"greedy representative", std::to_string(greedy.size()),
                ugs::FormatSci(ugs::RepresentativeDegreeMae(graph, greedy)),
                ugs::FormatFixed(mean_reliability(greedy_graph), 3)});
  table.AddRow({"EMD alpha=0.32",
                std::to_string(sparse.graph.num_edges()),
                ugs::FormatSci(ugs::DegreeDiscrepancyMae(graph, sparse.graph)),
                ugs::FormatFixed(mean_reliability(sparse.graph), 3)});
  table.AddRow({"original", std::to_string(graph.num_edges()), "0",
                ugs::FormatFixed(mean_reliability(graph), 3)});
  table.Print();
  std::printf("  (a representative answers each pair 0/1 -- it cannot\n"
              "   express per-pair probabilities; Section 2.3's argument)\n");
}

void StratifiedAblation(const ugs::UncertainGraph& graph,
                        const ugs::BenchConfig& config) {
  std::printf("\n[D] stratified vs plain MC estimation "
              "(reliability of one pair, budget 256):\n");
  ugs::Rng pair_rng(config.seed + 17);
  std::vector<ugs::VertexPair> pairs =
      ugs::SampleDistinctPairs(graph.num_vertices(), 1, &pair_rng);
  const ugs::VertexPair pair = pairs[0];

  auto query = [&](const ugs::UncertainGraph& g) {
    return [&g, pair](const std::vector<char>& present) {
      ugs::UnionFind uf(g.num_vertices());
      for (ugs::EdgeId e = 0; e < g.num_edges(); ++e) {
        if (present[e]) uf.Union(g.edge(e).u, g.edge(e).v);
      }
      return uf.Connected(pair.s, pair.t) ? 1.0 : 0.0;
    };
  };

  auto emd = ugs::MakeSparsifierByName("EMD");
  if (!emd.ok()) std::abort();
  ugs::Rng srng(config.seed + 19);
  ugs::SparsifyOutput sparse = ugs::MustSparsify(**emd, graph, 0.32, &srng);

  const int kBudget = 256;
  const int kRuns = config.Samples(60, 12);
  ugs::StratifiedOptions stratified;
  stratified.total_samples = kBudget;
  // Few pivots: 16 strata for a 256-sample budget keeps the per-stratum
  // allocation meaningful (over-stratifying wastes budget on the forced
  // one-sample-per-stratum minimum).
  stratified.num_pivot_edges = 4;

  ugs::ReportTable table({"graph / estimator", "variance"});
  struct GraphCase {
    const char* name;
    const ugs::UncertainGraph* graph;
  };
  for (const GraphCase& c :
       std::vector<GraphCase>{{"original", &graph},
                              {"EMD-sparsified", &sparse.graph}}) {
    auto world_query = query(*c.graph);
    ugs::Rng v1(config.seed + 23), v2(config.seed + 29);
    double mc_var = ugs::MeanEstimatorVariance(
        [&](ugs::Rng* r) {
          return std::vector<double>{
              ugs::MonteCarloEstimate(*c.graph, world_query, kBudget, r)};
        },
        kRuns, &v1);
    double st_var = ugs::MeanEstimatorVariance(
        [&](ugs::Rng* r) {
          return std::vector<double>{
              ugs::StratifiedEstimate(*c.graph, world_query, stratified, r)};
        },
        kRuns, &v2);
    table.AddRow({std::string(c.name) + " / plain MC",
                  ugs::FormatSci(mc_var)});
    table.AddRow({std::string(c.name) + " / stratified",
                  ugs::FormatSci(st_var)});
  }
  table.Print();
  std::printf(
      "  (stratification helps only when the pivot edges matter to the\n"
      "   query -- globally-chosen pivots are variance-neutral here;\n"
      "   sparsification's entropy reduction is the dominant effect)\n");
}

void CutRuleAblation(const ugs::UncertainGraph& graph,
                     const ugs::BenchConfig& config) {
  std::printf("\n[E] GDB cut rule k (Section 5) vs evaluated cut size "
              "(alpha = 0.32, MAE of delta_A(S) at |S|):\n");
  const std::vector<std::size_t> eval_sizes = {1, 2, 8, 64};
  std::vector<std::string> headers{"optimized rule"};
  for (std::size_t s : eval_sizes) {
    headers.push_back("|S|=" + std::to_string(s));
  }
  ugs::ReportTable table(headers);
  struct RuleCase {
    std::string name;
    ugs::CutRule rule;
  };
  for (const RuleCase& c : std::vector<RuleCase>{
           {"k=1 (degrees)", ugs::CutRule::Degrees()},
           {"k=2", ugs::CutRule::Cuts(2)},
           {"k=4", ugs::CutRule::Cuts(4)},
           {"k=16", ugs::CutRule::Cuts(16)},
           {"k=n (random)", ugs::CutRule::AllCuts()}}) {
    ugs::GdbSparsifierOptions options;
    options.gdb.rule = c.rule;
    auto method = ugs::MakeGdbSparsifier(options, c.name);
    ugs::Rng rng(config.seed + 7);
    ugs::SparsifyOutput out = ugs::MustSparsify(*method, graph, 0.32, &rng);
    std::vector<std::string> row{c.name};
    for (std::size_t s : eval_sizes) {
      ugs::Rng cut_rng(config.seed + 1000 + s);
      row.push_back(ugs::FormatSci(ugs::CutDiscrepancyMaeForSetSize(
          graph, out.graph, s, config.Samples(128, 32), &cut_rng)));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("  (the analytic Eq.-14 rule keeps GDB's cost independent\n"
              "   of k; accuracy differences across k are modest except\n"
              "   for the degenerate k = n rule, as in the paper)\n");
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "Ablations: backbone, EMD h, representatives, stratified");
  ugs::UncertainGraph graph = ugs::bench::LoadDataset("FlickrReduced",
                                                      config);
  BackboneAblation(graph, config);
  EmdEntropyAblation(graph, config);
  RepresentativeAblation(graph, config);
  StratifiedAblation(graph, config);
  CutRuleAblation(graph, config);
  return 0;
}
