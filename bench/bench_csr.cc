// CSR format open-path bench: what the .ugsc binary format buys the
// serving layer at session-open time. Packs the Twitter-like stand-in to
// a temp .ugsc next to its text rendering, then times three open paths:
//
//   open_text      LoadEdgeList parse + adjacency build (the old path)
//   open_mmap      MappedGraph::Open with full validation (CRC pass +
//                  structural sweep) -- the registry's default
//   open_mmap_raw  MappedGraph::Open with validation off: the pure
//                  mmap + header-decode floor
//
// Each row reports wall ms and MB/s over the on-disk size. The asserted
// part is equivalence, not speed: every open path must yield a graph
// whose four CSR arrays are bit-identical to the text-parsed one, and a
// sampled reliability query on the mapped graph must be bit-identical to
// the same query on the parsed graph. Writes BENCH_csr.json.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "graph/csr_format.h"
#include "graph/graph_io.h"
#include "query/reliability.h"
#include "query/sample_engine.h"
#include "util/random.h"
#include "util/timer.h"

namespace {

/// Best-of-`iters` wall time for `fn` (untimed warm-up first, so page
/// cache and allocator state are comparable across the open paths).
template <typename Fn>
double BestMillis(int iters, const Fn& fn) {
  fn();
  double best = 0.0;
  for (int i = 0; i < iters; ++i) {
    ugs::Timer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

bool SameArrays(const ugs::UncertainGraph& a, const ugs::UncertainGraph& b) {
  const ugs::CsrArrays x = a.csr_arrays();
  const ugs::CsrArrays y = b.csr_arrays();
  auto same = [](const auto& s, const auto& t) {
    return s.size() == t.size() &&
           (s.empty() ||
            std::memcmp(s.data(), t.data(), s.size_bytes()) == 0);
  };
  return same(x.edges, y.edges) &&
         same(x.degree_offsets, y.degree_offsets) &&
         same(x.adjacency, y.adjacency) &&
         same(x.expected_degrees, y.expected_degrees);
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv, "CSR format: .ugsc mmap open vs text parse");

  ugs::UncertainGraph graph = ugs::bench::LoadDataset("Twitter", config);
  const int iters = config.Samples(5, 2);

  const std::string text_path = "bench_csr_graph.txt";
  const std::string ugsc_path = "bench_csr_graph.ugsc";
  ugs::Status status = ugs::SaveEdgeList(graph, text_path);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  status = ugs::WriteCsrGraph(graph, ugsc_path);
  if (!status.ok()) {
    std::fprintf(stderr, "pack failed: %s\n", status.ToString().c_str());
    return 1;
  }
  ugs::Result<ugs::MappedGraph> mapped = ugs::MappedGraph::Open(ugsc_path);
  if (!mapped.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  const double file_mb =
      static_cast<double>(mapped->mapped_bytes()) / (1024.0 * 1024.0);

  // --- Equivalence gates (the contract, independent of timing).
  bool identical_arrays = SameArrays(mapped->graph(), graph);
  bool identical_query = true;
  {
    ugs::Rng pair_rng(config.seed + 99);
    std::vector<ugs::VertexPair> pairs =
        ugs::SampleDistinctPairs(graph.num_vertices(), 8, &pair_rng);
    const int samples = config.Samples(200, 40);
    ugs::SampleEngine engine(ugs::SampleEngineOptions{.num_threads = 2});
    ugs::Rng rng_a(config.seed);
    ugs::Rng rng_b(config.seed);
    identical_query =
        ugs::McReliability(graph, pairs, samples, &rng_a, engine) ==
        ugs::McReliability(mapped->graph(), pairs, samples, &rng_b, engine);
  }

  struct OpenPath {
    std::string name;
    double wall_ms = 0.0;
  };
  std::vector<OpenPath> rows;
  rows.push_back({"open_text", BestMillis(iters, [&] {
                    ugs::Result<ugs::UncertainGraph> parsed =
                        ugs::LoadEdgeList(text_path);
                    if (!parsed.ok()) std::abort();
                  })});
  rows.push_back({"open_mmap", BestMillis(iters, [&] {
                    ugs::Result<ugs::MappedGraph> opened =
                        ugs::MappedGraph::Open(ugsc_path);
                    if (!opened.ok()) std::abort();
                  })});
  rows.push_back(
      {"open_mmap_raw", BestMillis(iters, [&] {
         ugs::Result<ugs::MappedGraph> opened = ugs::MappedGraph::Open(
             ugsc_path, ugs::CsrOpenOptions{.verify_checksums = false,
                                            .validate_structure = false});
         if (!opened.ok()) std::abort();
       })});

  ugs::BenchJsonWriter json;
  ugs::ReportTable table({"path", "wall ms", "MB/s", "identical"});
  const double text_ms = rows[0].wall_ms;
  for (const OpenPath& row : rows) {
    const double mb_per_sec =
        row.wall_ms > 0.0 ? file_mb / (row.wall_ms / 1e3) : 0.0;
    const bool identical = identical_arrays && identical_query;
    table.AddRow({row.name, ugs::FormatFixed(row.wall_ms, 2),
                  ugs::FormatFixed(mb_per_sec, 1),
                  identical ? "yes" : "NO"});
    json.Add({"bench_csr/" + row.name,
              "Twitter",
              1,
              row.wall_ms,
              0.0,
              {{"file_mb", file_mb},
               {"mb_per_sec", mb_per_sec},
               {"speedup_vs_text", row.wall_ms > 0.0 ? text_ms / row.wall_ms
                                                     : 0.0},
               {"identical_to_text", identical ? 1.0 : 0.0}}});
  }
  table.Print();

  std::remove(text_path.c_str());
  std::remove(ugsc_path.c_str());

  const std::string out_path = "BENCH_csr.json";
  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical_arrays || !identical_query) {
    std::fprintf(stderr,
                 "FAIL: mmap graph not bit-identical to parsed graph\n");
    return 1;
  }
  return 0;
}
