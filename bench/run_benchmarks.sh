#!/usr/bin/env bash
# Runs the benchmark suite and collects machine-readable BENCH_*.json
# perf records into an output directory, so successive PRs have a perf
# trajectory to compare against.
#
# Usage: bench/run_benchmarks.sh [build_dir] [out_dir]
#   build_dir  cmake build tree with the bench binaries (default: build)
#   out_dir    where BENCH_*.json and bench_output.txt land
#              (default: bench_out)
# Environment:
#   UGS_THREADS      pool size for the engine benches (default: hardware)
#   UGS_BENCH_QUICK  set to 1 for a fast smoke run
#   UGS_BENCH_SCALE  dataset scale factor (default 1.0)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_out}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "build dir '${BUILD_DIR}' not found; run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"
OUT_DIR="$(cd "${OUT_DIR}" && pwd)"
LOG="${OUT_DIR}/bench_output.txt"
: > "${LOG}"

# bench_engine emits BENCH_engine.json in its working directory; run all
# benches from OUT_DIR so every BENCH_*.json lands there.
run_bench() {
  local name="$1"
  local bin="${BUILD_DIR}/${name}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip ${name} (not built)" | tee -a "${LOG}"
    return 0
  fi
  bin="$(cd "$(dirname "${bin}")" && pwd)/$(basename "${bin}")"
  echo "=== ${name} ===" | tee -a "${LOG}"
  (cd "${OUT_DIR}" && "${bin}") 2>&1 | tee -a "${LOG}"
}

# The perf-trajectory benches (always) plus a representative figure bench
# as an end-to-end smoke of the full sparsify+query pipeline.
run_bench bench_engine
run_bench bench_service
run_bench bench_router
run_bench bench_csr
if [[ "${UGS_BENCH_QUICK:-0}" != "1" ]]; then
  run_bench bench_fig7
fi

echo
echo "collected perf records:"
ls -l "${OUT_DIR}"/BENCH_*.json 2>/dev/null || echo "  (none)"
