// Figure 6: MAE of the absolute degree discrepancy delta_A(u) (panels
// a, c) and of the sampled cut discrepancy delta_A(S) (panels b, d)
// versus alpha, for the representative proposed methods (GDB = GDBA,
// EMD = EMDR-t) against the deterministic-literature benchmarks NI and
// SS, on the Flickr-like and Twitter-like datasets.
//
// Paper shape: GDB/EMD win consistently, usually by orders of magnitude;
// NI is competitive only at small alpha on Twitter (high probabilities
// make the backbone nearly deterministic); SS is far off throughout.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "eval/experiment.h"
#include "eval/report.h"
#include "metrics/discrepancy.h"
#include "sparsify/sparsifier.h"

namespace {

void RunPanel(const ugs::UncertainGraph& graph, const ugs::BenchConfig& config,
              const char* dataset) {
  const std::vector<double> alphas = ugs::PaperAlphas();
  const std::vector<std::string> methods = {"NI", "SS", "GDB", "EMD"};

  ugs::CutSampleOptions cuts;
  cuts.num_k_values = config.Samples(12, 5);
  cuts.sets_per_k = config.Samples(48, 12);

  std::vector<std::string> headers{"method"};
  for (double a : alphas) headers.push_back(ugs::bench::AlphaLabel(a));
  ugs::ReportTable degree_table(headers);
  ugs::ReportTable cut_table(headers);

  for (const std::string& name : methods) {
    auto method = ugs::MakeSparsifierByName(name);
    if (!method.ok()) std::abort();
    std::vector<std::string> degree_row{name};
    std::vector<std::string> cut_row{name};
    for (double alpha : alphas) {
      ugs::Rng rng(config.seed + 7);
      ugs::SparsifyOutput out =
          ugs::MustSparsify(**method, graph, alpha, &rng);
      degree_row.push_back(ugs::FormatSci(ugs::DegreeDiscrepancyMae(
          graph, out.graph, ugs::DiscrepancyType::kAbsolute)));
      ugs::Rng cut_rng(config.seed + 1000);
      cut_row.push_back(ugs::FormatSci(
          ugs::CutDiscrepancyMae(graph, out.graph, cuts, &cut_rng)));
    }
    degree_table.AddRow(std::move(degree_row));
    cut_table.AddRow(std::move(cut_row));
  }
  std::printf("\nMAE of delta_A(u) (%s):\n", dataset);
  degree_table.Print();
  std::printf("\nMAE of delta_A(S) (%s):\n", dataset);
  cut_table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  ugs::BenchConfig config = ugs::ParseBenchArgs(
      argc, argv,
      "Figure 6: degree/cut discrepancy MAE vs benchmarks (real datasets)");
  {
    ugs::UncertainGraph flickr = ugs::bench::LoadDataset("Flickr", config);
    RunPanel(flickr, config, "Flickr-like");
  }
  {
    ugs::UncertainGraph twitter = ugs::bench::LoadDataset("Twitter", config);
    RunPanel(twitter, config, "Twitter-like");
  }
  std::printf(
      "\npaper Figure 6 shape: EMD <= GDB << NI, SS on both metrics and\n"
      "datasets; NI closes the gap only at small alpha on Twitter.\n");
  return 0;
}
