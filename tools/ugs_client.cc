// ugs_client: issue queries against a running ugs_serve daemon over the
// wire protocol (service/wire.h).
//
//   ugs_client --port=<p> [--host=127.0.0.1] --graph=<id> --query=<name>
//              [--samples=500] [--pairs=10] [--sources=5] [--k=10]
//              [--seed=1] [--estimator=auto] [--pivots=8]
//              [--pair=s,t ...] [--source=v ...] [--json]
//   ugs_client --port=<p> --stats [--graph=<id>]
//   ugs_client --port=<p> --metrics
//   ugs_client --port=<p> --batch=<file> [--pipeline] [--json]
//   ugs_client --port=<p> --graph=<id> --update=<op>:<u>:<v>[:<p>] ...
//
// --update applies edge mutations (insert/delete/reweight) to the named
// graph; repeating the flag batches every mutation into ONE atomic
// update frame (all applied or none), and the ack prints the graph's
// new version (docs/dynamic-graphs.md). Against ugs_router the batch is
// broadcast to every shard.
//
// --metrics fetches the daemon's Prometheus text exposition (the
// kMetricsStatsVerb stats sub-verb; works against ugs_serve and
// ugs_router alike). --timing prints one client-observed round-trip
// line per query to stderr -- stdout stays byte-identical, so timing
// can be layered onto the CI smoke's JSON diffs.
//
// Random pair/source sets are drawn exactly like ugs_query draws them
// (same seed-split streams, sized from the server's graph description),
// so `ugs_client --json` against a server and `ugs_query --json` on the
// same graph file print byte-identical lines -- the CI smoke asserts
// this. Explicit --pair/--source entries override the random draw. A
// batch file holds one query per line in the same --flag=value syntax
// (without --host/--port); '#' lines are comments. All queries of a batch
// ride one connection; with --pipeline they are all written before any
// reply is read (the server answers in request order -- fastest against
// the epoll backend, see docs/wire-protocol.md), and results print in
// file order either way.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "query/query.h"
#include "service/client.h"
#include "service/wire.h"
#include "tools/tool_common.h"
#include "util/parse.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ugs_client --port=<p> [--host=127.0.0.1] <mode>\n"
      "  query mode: --graph=<id> --query=<name>\n"
      "    --samples=<n> --pairs=<k> --sources=<k> --k=<n> --seed=<u>\n"
      "    --estimator=<e> --pivots=<r>       (as ugs_query)\n"
      "    --pair=<s>,<t>  explicit query pair (repeatable; overrides\n"
      "                    the --pairs random draw)\n"
      "    --source=<v>    explicit knn source (repeatable)\n"
      "    --json          emit the wire-schema JSON result line\n"
      "  admin mode:  --stats [--graph=<id>]\n"
      "               --metrics  print the Prometheus text exposition\n"
      "  update mode: --graph=<id> --update=<op>:<u>:<v>[:<p>]\n"
      "    op is insert, delete, or reweight; insert/reweight take the\n"
      "    probability p. Repeat --update to batch mutations into one\n"
      "    atomic frame; the ack prints the graph's new version\n"
      "  batch mode:  --batch=<file>  one query per line, same flags\n"
      "    --pipeline      write all requests before reading replies\n"
      "  --timing        print client-observed RTT per request to\n"
      "                  stderr (stdout unchanged)\n"
      "  --connect-retries=<n>  retry a refused/timed-out connect up to\n"
      "                  n times with exponential backoff (default 0:\n"
      "                  fail fast)\n");
  std::exit(2);
}

using ugs::tools::Die;
using ugs::tools::PositiveFlag;

/// One query spec in the shared --flag=value syntax (command line or
/// batch-file line).
struct QuerySpec {
  std::string graph;
  std::string query;
  std::string estimator = "auto";
  std::int64_t samples = 500, pairs = 10, sources = 5, k = 10, pivots = 8;
  std::uint64_t seed = 1;
  std::vector<ugs::VertexPair> explicit_pairs;
  std::vector<ugs::VertexId> explicit_sources;
};

ugs::VertexPair ParsePair(const std::string& text) {
  const std::size_t comma = text.find(',');
  if (comma == std::string::npos) {
    Die("--pair needs the form <s>,<t>, got '" + text + "'");
  }
  ugs::VertexPair pair;
  pair.s = static_cast<ugs::VertexId>(
      ugs::ParseUint64OrExit("--pair", text.substr(0, comma)));
  pair.t = static_cast<ugs::VertexId>(
      ugs::ParseUint64OrExit("--pair", text.substr(comma + 1)));
  return pair;
}

/// Applies one --flag=value token to the spec; false when unrecognized.
bool ApplySpecFlag(const std::string& token, QuerySpec* spec) {
  auto value = [&token](std::size_t prefix) {
    return token.substr(prefix);
  };
  if (token.rfind("--graph=", 0) == 0) {
    spec->graph = value(8);
  } else if (token.rfind("--query=", 0) == 0) {
    spec->query = value(8);
  } else if (token.rfind("--estimator=", 0) == 0) {
    spec->estimator = value(12);
  } else if (token.rfind("--samples=", 0) == 0) {
    spec->samples = PositiveFlag("--samples", value(10));
  } else if (token.rfind("--pairs=", 0) == 0) {
    spec->pairs = PositiveFlag("--pairs", value(8));
  } else if (token.rfind("--sources=", 0) == 0) {
    spec->sources = PositiveFlag("--sources", value(10));
  } else if (token.rfind("--k=", 0) == 0) {
    spec->k = PositiveFlag("--k", value(4));
  } else if (token.rfind("--pivots=", 0) == 0) {
    spec->pivots = PositiveFlag("--pivots", value(9));
  } else if (token.rfind("--seed=", 0) == 0) {
    spec->seed = ugs::ParseUint64OrExit("--seed", value(7));
  } else if (token.rfind("--pair=", 0) == 0) {
    spec->explicit_pairs.push_back(ParsePair(value(7)));
  } else if (token.rfind("--source=", 0) == 0) {
    spec->explicit_sources.push_back(static_cast<ugs::VertexId>(
        ugs::ParseUint64OrExit("--source", value(9))));
  } else {
    return false;
  }
  return true;
}

/// Parses one --update value: <op>:<u>:<v>[:<p>] with op one of
/// insert / delete / reweight. Dies with a typed usage error on any
/// malformed field (never sends a half-parsed mutation).
ugs::EdgeUpdate ParseUpdate(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = text.find(':', start);
    parts.push_back(text.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.size() < 3 || parts.size() > 4) {
    Die("--update needs the form <op>:<u>:<v>[:<p>], got '" + text + "'");
  }
  ugs::EdgeUpdate update;
  if (parts[0] == "insert") {
    update.op = ugs::EdgeUpdateOp::kInsert;
  } else if (parts[0] == "delete") {
    update.op = ugs::EdgeUpdateOp::kDelete;
  } else if (parts[0] == "reweight") {
    update.op = ugs::EdgeUpdateOp::kReweight;
  } else {
    Die("--update op must be insert, delete, or reweight, got '" + parts[0] +
        "'");
  }
  update.u = static_cast<ugs::VertexId>(
      ugs::ParseUint64OrExit("--update u", parts[1]));
  update.v = static_cast<ugs::VertexId>(
      ugs::ParseUint64OrExit("--update v", parts[2]));
  if (update.op == ugs::EdgeUpdateOp::kDelete) {
    if (parts.size() == 4) {
      Die("--update delete takes no probability: '" + text + "'");
    }
  } else {
    if (parts.size() != 4) {
      Die("--update " + parts[0] + " needs a probability: '" + text + "'");
    }
    update.p = ugs::ParseDoubleOrExit("--update p", parts[3]);
  }
  return update;
}

/// Extracts the "vertices" count from a graph-description JSON line (the
/// stats verb's reply; see Server::HandleStats).
std::size_t VerticesFromDescription(const std::string& json) {
  const std::string key = "\"vertices\":";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) {
    Die("server description lacks a vertex count: " + json);
  }
  return static_cast<std::size_t>(
      ugs::ParseUint64OrExit("vertices", json.substr(
          at + key.size(),
          json.find_first_of(",}", at + key.size()) - at - key.size())));
}

/// Vertex counts already fetched from the server, so a batch over one
/// graph describes it once instead of once per line.
using VertexCountCache = std::map<std::string, std::size_t>;

/// Builds the QueryRequest a spec describes, fetching the graph's vertex
/// count from the server when a random pair/source draw needs sizing.
ugs::QueryRequest BuildRequest(const QuerySpec& spec, ugs::Client* client,
                               VertexCountCache* vertex_counts) {
  ugs::Result<ugs::Estimator> estimator = ugs::ParseEstimator(spec.estimator);
  if (!estimator.ok()) Die(estimator.status().message());
  ugs::QueryRequest request;
  request.query = spec.query;
  request.num_samples = static_cast<int>(spec.samples);
  request.seed = spec.seed;
  request.estimator = *estimator;
  request.k = static_cast<std::size_t>(spec.k);
  request.num_pivot_edges = static_cast<int>(spec.pivots);
  if (!spec.explicit_pairs.empty() || !spec.explicit_sources.empty()) {
    request.pairs = spec.explicit_pairs;
    request.sources = spec.explicit_sources;
    return request;
  }
  auto cached = vertex_counts->find(spec.graph);
  if (cached == vertex_counts->end()) {
    ugs::Result<std::string> description = client->Stats(spec.graph);
    if (!description.ok()) Die(description.status().ToString());
    cached = vertex_counts
                 ->emplace(spec.graph, VerticesFromDescription(*description))
                 .first;
  }
  ugs::tools::DrawRequestUnits(cached->second, spec.pairs, spec.sources,
                               &request);
  return request;
}

/// Prints one result (JSON or a compact summary).
void PrintResult(const QuerySpec& spec, const ugs::QueryResult& result,
                 bool json) {
  if (json) {
    std::printf("%s\n",
                ugs::ResultToJson(result, /*include_timing=*/false).c_str());
    return;
  }
  std::printf("graph=%s query=%s estimator=%s time=%.3fs", spec.graph.c_str(),
              result.query.c_str(), ugs::EstimatorName(result.estimator),
              result.seconds);
  if (result.has_scalar) std::printf(" scalar=%.6f", result.scalar);
  if (!result.means.empty()) {
    double mean = 0.0;
    for (double m : result.means) mean += m;
    std::printf(" mean=%.6f (%zu units)",
                mean / static_cast<double>(result.means.size()),
                result.means.size());
  }
  std::printf("\n");
}

/// Resolves a spec into the wire request it describes.
ugs::WireRequest ResolveSpec(const QuerySpec& spec, ugs::Client* client,
                             VertexCountCache* vertex_counts) {
  if (spec.graph.empty() || spec.query.empty()) {
    Die("each query needs --graph and --query");
  }
  return {spec.graph, BuildRequest(spec, client, vertex_counts)};
}

/// Prints one client-observed round-trip line to stderr (--timing).
void PrintTiming(const ugs::WireRequest& request, double rtt_ms) {
  std::fprintf(stderr, "timing: graph=%s query=%s rtt_ms=%.3f\n",
               request.graph.c_str(), request.request.query.c_str(), rtt_ms);
}

/// Runs one spec round-trip and prints its result.
void RunSpec(const QuerySpec& spec, bool json, bool timing,
             ugs::Client* client, VertexCountCache* vertex_counts) {
  ugs::WireRequest request = ResolveSpec(spec, client, vertex_counts);
  ugs::Timer timer;
  ugs::Result<ugs::QueryResult> result =
      client->Query(request.graph, request.request);
  if (timing) PrintTiming(request, timer.ElapsedMillis());
  if (!result.ok()) Die(result.status().ToString());
  PrintResult(spec, *result, json);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1", batch_file;
  std::int64_t port = 7471, connect_retries = 0;
  bool stats = false, metrics = false, json = false, pipeline = false;
  bool timing = false;
  QuerySpec spec;
  std::vector<ugs::EdgeUpdate> updates;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      port = ugs::ParseInt64OrExit("--port", arg.substr(7));
    } else if (arg.rfind("--connect-retries=", 0) == 0) {
      connect_retries =
          ugs::ParseInt64OrExit("--connect-retries", arg.substr(18));
    } else if (arg.rfind("--batch=", 0) == 0) {
      batch_file = arg.substr(8);
    } else if (arg.rfind("--update=", 0) == 0) {
      updates.push_back(ParseUpdate(arg.substr(9)));
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--pipeline") {
      pipeline = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (!ApplySpecFlag(arg, &spec)) {
      Usage();
    }
  }
  if (port <= 0 || port > 65535) Die("--port must be in [1, 65535]");
  if (connect_retries < 0) Die("--connect-retries must be >= 0");

  ugs::ConnectOptions connect_options;
  connect_options.max_retries = static_cast<int>(connect_retries);
  ugs::Result<ugs::Client> connected =
      ugs::Client::Connect(host, static_cast<int>(port), connect_options);
  if (!connected.ok()) Die(connected.status().ToString());
  ugs::Client client = std::move(connected.value());
  VertexCountCache vertex_counts;

  if (metrics) {
    // The exposition already ends with a newline; print it verbatim so
    // the output pipes straight into promtool / a scrape job.
    ugs::Result<std::string> reply = client.Stats(ugs::kMetricsStatsVerb);
    if (!reply.ok()) Die(reply.status().ToString());
    std::printf("%s", reply->c_str());
    return 0;
  }

  if (stats) {
    ugs::Result<std::string> reply = client.Stats(spec.graph);
    if (!reply.ok()) Die(reply.status().ToString());
    std::printf("%s\n", reply->c_str());
    return 0;
  }

  if (!updates.empty()) {
    if (spec.graph.empty()) Die("--update needs --graph");
    ugs::Result<ugs::WireUpdateReply> ack = client.Update(spec.graph, updates);
    if (!ack.ok()) Die(ack.status().ToString());
    std::printf("update: graph=%s applied=%u version=%llu\n",
                spec.graph.c_str(), ack->applied,
                static_cast<unsigned long long>(ack->version));
    return 0;
  }

  if (!batch_file.empty()) {
    std::ifstream in(batch_file);
    if (!in) Die("cannot open batch file '" + batch_file + "'");
    std::vector<QuerySpec> specs;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty() || line[0] == '#') continue;
      QuerySpec line_spec;
      std::istringstream tokens(line);
      std::string token;
      while (tokens >> token) {
        if (!ApplySpecFlag(token, &line_spec)) {
          Die("batch line " + std::to_string(line_number) +
              ": unknown flag '" + token + "'");
        }
      }
      specs.push_back(std::move(line_spec));
    }
    if (specs.empty()) {
      // Guard the batch summary: the per-query average below divides by
      // the batch size, and an all-comments (or empty) file is almost
      // always a caller mistake worth a typed error, not silent success.
      Die("batch file '" + batch_file + "' contains no queries");
    }
    if (!pipeline) {
      for (const QuerySpec& line_spec : specs) {
        RunSpec(line_spec, json, timing, &client, &vertex_counts);
      }
      return 0;
    }
    // Pipelined: resolve every spec first (graph descriptions are
    // plain round trips), then ship the whole batch before reading any
    // reply. Results come back -- and print -- in file order. Timing
    // reports the batch as a whole: per-reply stamps would mostly
    // measure the pipeline's own queueing, not the server.
    std::vector<ugs::WireRequest> requests;
    requests.reserve(specs.size());
    for (const QuerySpec& line_spec : specs) {
      requests.push_back(ResolveSpec(line_spec, &client, &vertex_counts));
    }
    ugs::Timer timer;
    std::vector<ugs::Result<ugs::QueryResult>> results =
        client.QueryPipelined(requests);
    if (timing) {
      const double total_ms = timer.ElapsedMillis();
      // results.size() >= 1: the empty-batch guard above already died.
      std::fprintf(stderr, "timing: batch n=%zu total_ms=%.3f avg_ms=%.3f\n",
                   results.size(), total_ms,
                   total_ms / static_cast<double>(results.size()));
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) Die(results[i].status().ToString());
      PrintResult(specs[i], *results[i], json);
    }
    return 0;
  }

  RunSpec(spec, json, timing, &client, &vertex_counts);
  return 0;
}
