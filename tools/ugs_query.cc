// ugs_query: execute any registered query on an uncertain graph file
// through the unified Query API (query/query.h + query/graph_session.h).
//
//   ugs_query --in=<path> --query=<name> [--samples=500] [--pairs=10]
//             [--sources=5] [--k=10] [--top=10] [--seed=1]
//             [--estimator=auto] [--pivots=8] [--threads=0] [--json]
//
// The query and estimator names come from the registry; run with no
// arguments for the full list. Pair queries draw --pairs random s/t
// pairs; knn draws --sources random source vertices. --json replaces the
// human-readable report with the wire protocol's one-line JSON result
// (service/wire.h) -- the same schema ugs_client emits, with the
// wall-time field dropped so repeated runs diff clean.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/graph_stats.h"
#include "query/graph_session.h"
#include "query/query.h"
#include "service/wire.h"
#include "tools/tool_common.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += " | ";
    joined += name;
  }
  return joined;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: ugs_query --in=<path> --query=<name>\n"
      "  --samples=<n>    Monte-Carlo world budget          (default 500)\n"
      "  --pairs=<k>      random s/t pairs for pair queries (default 10)\n"
      "  --sources=<k>    random sources for knn            (default 5)\n"
      "  --k=<n>          neighbors per source for knn      (default 10)\n"
      "  --top=<k>        rows printed for vertex queries   (default 10)\n"
      "  --seed=<u>       RNG seed                          (default 1)\n"
      "  --estimator=<e>  auto | sampled | skip | stratified | exact\n"
      "  --pivots=<r>     stratified pivot edges            (default 8)\n"
      "  --threads=<n>    sampling pool size (env UGS_THREADS; 0 = hw)\n"
      "  --json           emit the wire-schema JSON result line only\n"
      "  queries: %s\n"
      "  aliases: cc = clustering, sp = shortest-path,\n"
      "           mpp = most-probable-path\n",
      JoinNames(ugs::KnownQueryNames()).c_str());
  std::exit(2);
}

using ugs::tools::Die;
using ugs::tools::PositiveFlag;

/// Top-k unit ids by descending mean.
std::vector<ugs::VertexId> TopUnits(const std::vector<double>& means,
                                    std::size_t k) {
  std::vector<ugs::VertexId> order(means.size());
  for (std::size_t v = 0; v < means.size(); ++v) {
    order[v] = static_cast<ugs::VertexId>(v);
  }
  std::sort(order.begin(), order.end(),
            [&](ugs::VertexId a, ugs::VertexId b) {
              return means[a] > means[b];
            });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace

int main(int argc, char** argv) {
  std::string in, query_name, estimator_name = "auto";
  std::int64_t samples = 500, pairs = 10, sources = 5, k = 10, top = 10;
  std::int64_t pivots = 8, threads = 0;
  std::uint64_t seed = 1;
  bool json = false;
  if (const char* env = std::getenv("UGS_THREADS")) {
    threads = ugs::ParseInt64OrExit("UGS_THREADS", env);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in = arg + 5;
    } else if (std::strncmp(arg, "--query=", 8) == 0) {
      query_name = arg + 8;
    } else if (std::strncmp(arg, "--samples=", 10) == 0) {
      samples = PositiveFlag("--samples", arg + 10);
    } else if (std::strncmp(arg, "--pairs=", 8) == 0) {
      pairs = PositiveFlag("--pairs", arg + 8);
    } else if (std::strncmp(arg, "--sources=", 10) == 0) {
      sources = PositiveFlag("--sources", arg + 10);
    } else if (std::strncmp(arg, "--k=", 4) == 0) {
      k = PositiveFlag("--k", arg + 4);
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = PositiveFlag("--top", arg + 6);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = ugs::ParseUint64OrExit("--seed", arg + 7);
    } else if (std::strncmp(arg, "--estimator=", 12) == 0) {
      estimator_name = arg + 12;
    } else if (std::strncmp(arg, "--pivots=", 9) == 0) {
      pivots = PositiveFlag("--pivots", arg + 9);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = ugs::ParseInt64OrExit("--threads", arg + 10);
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else {
      Usage();
    }
  }
  if (in.empty() || query_name.empty()) Usage();
  if (threads < 0) Die("threads must be >= 0");

  ugs::Result<ugs::Estimator> estimator = ugs::ParseEstimator(estimator_name);
  if (!estimator.ok()) Die(estimator.status().message());
  ugs::ThreadPool::SetDefaultThreads(static_cast<int>(threads));

  auto session = ugs::GraphSession::Open(in);
  if (!session.ok()) Die(session.status().ToString());
  const ugs::UncertainGraph& graph = (*session)->graph();
  if (!json) {
    std::printf("%s\n",
                ugs::FormatStats("graph", (*session)->stats()).c_str());
  }

  ugs::QueryRequest request;
  request.query = query_name;
  request.num_samples = static_cast<int>(samples);
  request.seed = seed;
  request.estimator = *estimator;
  request.k = static_cast<std::size_t>(k);
  request.num_pivot_edges = static_cast<int>(pivots);
  ugs::tools::DrawRequestUnits(graph.num_vertices(), pairs, sources,
                               &request);

  ugs::Result<ugs::QueryResult> result = (*session)->Run(request);
  if (!result.ok()) Die(result.status().ToString());
  const ugs::QueryResult& r = *result;
  if (json) {
    std::printf("%s\n",
                ugs::ResultToJson(r, /*include_timing=*/false).c_str());
    return 0;
  }
  std::printf("query=%s estimator=%s samples=%lld time=%.3fs\n",
              r.query.c_str(), ugs::EstimatorName(r.estimator),
              static_cast<long long>(samples), r.seconds);

  if (r.query == "connectivity") {
    std::printf("Pr[connected] = %.4f\n", r.scalar);
  } else if (r.query == "reliability") {
    std::printf("reliability of %zu random pairs:\n", request.pairs.size());
    for (std::size_t i = 0; i < request.pairs.size(); ++i) {
      std::printf("  v%-6u -> v%-6u : %.4f\n", request.pairs[i].s,
                  request.pairs[i].t, r.means[i]);
    }
  } else if (r.query == "shortest-path") {
    std::printf("E[d(s, t) | connected] of %zu random pairs:\n",
                request.pairs.size());
    for (std::size_t i = 0; i < request.pairs.size(); ++i) {
      std::printf("  v%-6u -> v%-6u : %.3f\n", request.pairs[i].s,
                  request.pairs[i].t, r.means[i]);
    }
  } else if (r.query == "pagerank") {
    std::vector<ugs::VertexId> order =
        TopUnits(r.means, static_cast<std::size_t>(top));
    std::printf("top-%zu vertices by mean PageRank:\n", order.size());
    for (ugs::VertexId v : order) {
      std::printf("  v%-8u %.6f\n", v, r.means[v]);
    }
  } else if (r.query == "clustering") {
    double mean = 0.0;
    for (double m : r.means) mean += m;
    if (!r.means.empty()) mean /= static_cast<double>(r.means.size());
    std::printf("mean local clustering coefficient = %.5f\n", mean);
  } else if (r.query == "knn") {
    for (std::size_t i = 0; i < request.sources.size(); ++i) {
      std::printf("top-%zu most-probable neighbors of v%u:\n", request.k,
                  request.sources[i]);
      for (const ugs::KnnResult& neighbor : r.knn[i]) {
        std::printf("  v%-8u p=%.4f\n", neighbor.vertex,
                    neighbor.path_probability);
      }
    }
  } else if (r.query == "most-probable-path") {
    for (std::size_t i = 0; i < request.pairs.size(); ++i) {
      const ugs::MostProbablePath& path = r.paths[i];
      std::printf("  v%-6u -> v%-6u : p=%.4f hops=%zu\n", request.pairs[i].s,
                  request.pairs[i].t, path.probability,
                  path.vertices.empty() ? 0 : path.vertices.size() - 1);
    }
  }
  return 0;
}
