// ugs_query: run a Monte-Carlo query on an uncertain graph file.
//
//   ugs_query --in=<path> --query=connectivity|pagerank|reliability|cc
//             [--samples=<n>] [--pairs=<k>] [--top=<k>] [--seed=<u>]
//
// pagerank prints the top-k vertices by mean rank; reliability samples
// random vertex pairs; cc prints the mean local clustering coefficient.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "query/clustering.h"
#include "query/pagerank.h"
#include "query/reliability.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ugs_query --in=<path> --query=<q> [--samples=500]\n"
      "                 [--pairs=10] [--top=10] [--seed=1]\n"
      "  queries: connectivity | pagerank | reliability | cc\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string in, query;
  int samples = 500, pairs = 10, top = 10;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in = arg + 5;
    } else if (std::strncmp(arg, "--query=", 8) == 0) {
      query = arg + 8;
    } else if (std::strncmp(arg, "--samples=", 10) == 0) {
      samples = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--pairs=", 8) == 0) {
      pairs = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = std::atoi(arg + 6);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else {
      Usage();
    }
  }
  if (in.empty() || query.empty() || samples <= 0) Usage();

  ugs::Result<ugs::UncertainGraph> graph = ugs::LoadEdgeList(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              ugs::FormatStats("graph", ugs::ComputeStats(*graph)).c_str());
  ugs::Rng rng(seed);

  if (query == "connectivity") {
    double p = ugs::EstimateConnectivity(*graph, samples, &rng);
    std::printf("Pr[connected] = %.4f (%d worlds)\n", p, samples);
  } else if (query == "pagerank") {
    ugs::McSamples pr = ugs::McPageRank(*graph, samples, &rng);
    std::vector<ugs::VertexId> order(pr.num_units);
    for (ugs::VertexId v = 0; v < pr.num_units; ++v) order[v] = v;
    std::sort(order.begin(), order.end(),
              [&](ugs::VertexId a, ugs::VertexId b) {
                return pr.UnitMean(a) > pr.UnitMean(b);
              });
    int k = std::min<int>(top, static_cast<int>(order.size()));
    std::printf("top-%d vertices by mean PageRank (%d worlds):\n", k,
                samples);
    for (int i = 0; i < k; ++i) {
      std::printf("  v%-8u %.6f\n", order[i], pr.UnitMean(order[i]));
    }
  } else if (query == "reliability") {
    std::vector<ugs::VertexPair> vertex_pairs = ugs::SampleDistinctPairs(
        graph->num_vertices(), static_cast<std::size_t>(pairs), &rng);
    std::vector<double> rel =
        ugs::EstimateReliability(*graph, vertex_pairs, samples, &rng);
    std::printf("reliability of %d random pairs (%d worlds):\n", pairs,
                samples);
    for (std::size_t i = 0; i < vertex_pairs.size(); ++i) {
      std::printf("  v%-6u -> v%-6u : %.4f\n", vertex_pairs[i].s,
                  vertex_pairs[i].t, rel[i]);
    }
  } else if (query == "cc") {
    ugs::McSamples cc = ugs::McClusteringCoefficient(*graph, samples, &rng);
    double mean = 0.0;
    for (std::size_t v = 0; v < cc.num_units; ++v) mean += cc.UnitMean(v);
    mean /= static_cast<double>(cc.num_units);
    std::printf("mean local clustering coefficient = %.5f (%d worlds)\n",
                mean, samples);
  } else {
    Usage();
  }
  return 0;
}
