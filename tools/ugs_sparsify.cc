// ugs_sparsify: sparsify an uncertain graph file with any method of the
// paper and write the sparsified graph.
//
//   ugs_sparsify --in=<path> --out=<path> --alpha=<a>
//                [--method=<name>] [--h=<h>] [--seed=<u>] [--threads=<n>]
//
// Methods: GDB, EMD (representative variants), or any registry name
// (GDBA, GDBR-t, GDBA2, GDBAn, GDBA-k<k>, EMDA, EMDR-t, LP, LP-t, NI,
// SS; see sparsify/sparsifier.h).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "metrics/discrepancy.h"
#include "sparsify/sparsifier.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ugs_sparsify --in=<path> --out=<path> --alpha=<a>\n"
               "                    [--method=EMD] [--h=0.05] [--seed=1]\n"
               "                    [--threads=0]  (env UGS_THREADS)\n"
               "  alpha: target edge ratio |E'| / |E|, in (0, 1]\n");
  std::exit(2);
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string in, out, method_name = "EMD";
  double alpha = 0.0, h = 0.05;
  std::uint64_t seed = 1;
  std::int64_t threads = 0;
  if (const char* env = std::getenv("UGS_THREADS")) {
    threads = ugs::ParseInt64OrExit("UGS_THREADS", env);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in = arg + 5;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--alpha=", 8) == 0) {
      alpha = ugs::ParseDoubleOrExit("--alpha", arg + 8);
    } else if (std::strncmp(arg, "--method=", 9) == 0) {
      method_name = arg + 9;
    } else if (std::strncmp(arg, "--h=", 4) == 0) {
      h = ugs::ParseDoubleOrExit("--h", arg + 4);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = ugs::ParseUint64OrExit("--seed", arg + 7);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = ugs::ParseInt64OrExit("--threads", arg + 10);
    } else {
      Usage();
    }
  }
  if (in.empty() || out.empty()) Usage();
  if (alpha <= 0.0 || alpha > 1.0) {
    Die("--alpha must be in (0, 1], got " + std::to_string(alpha));
  }
  if (threads < 0) Die("--threads must be >= 0");
  ugs::ThreadPool::SetDefaultThreads(static_cast<int>(threads));

  ugs::Result<ugs::UncertainGraph> graph = ugs::LoadEdgeList(in);
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  auto method = ugs::MakeSparsifierByName(method_name, h);
  if (!method.ok()) {
    std::fprintf(stderr, "error: %s\n", method.status().ToString().c_str());
    return 1;
  }
  ugs::Rng rng(seed);
  auto result = (*method)->Sparsify(*graph, alpha, &rng);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  ugs::Status status = ugs::SaveEdgeList(result->graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", ugs::FormatStats("input",
                                       ugs::ComputeStats(*graph)).c_str());
  std::printf("%s\n",
              ugs::FormatStats("output",
                               ugs::ComputeStats(result->graph)).c_str());
  std::printf("method=%s alpha=%.3f time=%.2fs degree-MAE=%.5f "
              "relative-entropy=%.4f\n",
              (*method)->name().c_str(), alpha, result->seconds,
              ugs::DegreeDiscrepancyMae(*graph, result->graph),
              ugs::RelativeEntropy(*graph, result->graph));
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
