// ugs_generate: emit a synthetic uncertain graph in the library's
// edge-list format.
//
//   ugs_generate --dataset=flickr|twitter|flickr-reduced|density<P>|er
//                [--scale=<f>] [--seed=<u>] [--vertices=<n>]
//                [--edges=<m>] [--threads=<n>] --out=<path>
//
// 'er' generates an Erdos-Renyi graph with --vertices/--edges and
// uniform probabilities; the named datasets are the paper stand-ins of
// gen/datasets.h.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gen/datasets.h"
#include "gen/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ugs_generate --dataset=<name> --out=<path>\n"
      "  --dataset   flickr | twitter | flickr-reduced | density<P> | er\n"
      "  --scale     size multiplier for named datasets (default 1.0)\n"
      "  --seed      RNG seed (default 1)\n"
      "  --vertices  vertex count for 'er' (default 1000)\n"
      "  --edges     edge count for 'er' (default 8000)\n"
      "  --threads   worker pool size (default 0 = hardware;\n"
      "              env UGS_THREADS)\n");
  std::exit(2);
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset, out;
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::uint64_t vertices = 1000, edges = 8000;
  std::int64_t threads = 0;
  if (const char* env = std::getenv("UGS_THREADS")) {
    threads = ugs::ParseInt64OrExit("UGS_THREADS", env);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--dataset=", 10) == 0) {
      dataset = arg + 10;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      scale = ugs::ParseDoubleOrExit("--scale", arg + 8);
      if (scale <= 0.0) Die("--scale must be positive");
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = ugs::ParseUint64OrExit("--seed", arg + 7);
    } else if (std::strncmp(arg, "--vertices=", 11) == 0) {
      vertices = ugs::ParseUint64OrExit("--vertices", arg + 11);
      if (vertices == 0) Die("--vertices must be positive");
    } else if (std::strncmp(arg, "--edges=", 8) == 0) {
      edges = ugs::ParseUint64OrExit("--edges", arg + 8);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = ugs::ParseInt64OrExit("--threads", arg + 10);
    } else {
      Usage();
    }
  }
  if (dataset.empty() || out.empty()) Usage();
  if (threads < 0) Die("--threads must be >= 0");
  ugs::ThreadPool::SetDefaultThreads(static_cast<int>(threads));

  ugs::UncertainGraph graph;
  if (dataset == "flickr") {
    graph = ugs::MakeFlickrLike(scale, seed);
  } else if (dataset == "twitter") {
    graph = ugs::MakeTwitterLike(scale, seed);
  } else if (dataset == "flickr-reduced") {
    graph = ugs::MakeFlickrReduced(scale, seed);
  } else if (dataset.rfind("density", 0) == 0) {
    std::int64_t percent = ugs::ParseInt64OrExit("--dataset=density<P>",
                                                  dataset.substr(7));
    if (percent <= 0 || percent > 100) {
      Die("density percentage must be in (0, 100]");
    }
    std::size_t n = static_cast<std::size_t>(1000 * scale);
    graph = ugs::MakeDensitySweepGraph(static_cast<int>(percent),
                                       n < 64 ? 64 : n, seed);
  } else if (dataset == "er") {
    ugs::Rng rng(seed);
    graph = ugs::GenerateErdosRenyi(
        vertices, edges, ugs::ProbabilityDistribution::Uniform(0.05, 0.6),
        &rng);
  } else {
    Usage();
  }

  ugs::Status status = ugs::SaveEdgeList(graph, out);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              ugs::FormatStats(dataset, ugs::ComputeStats(graph)).c_str());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
