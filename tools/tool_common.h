#ifndef UGS_TOOLS_TOOL_COMMON_H_
#define UGS_TOOLS_TOOL_COMMON_H_

// Request-construction helpers shared by ugs_query and ugs_client. Both
// tools draw the random pair/source sets of a request from the same
// seed-split streams, so a client query against ugs_serve and a local
// ugs_query over the same graph build bit-identical QueryRequests -- the
// property the CI serve-smoke diff relies on.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "query/query.h"
#include "query/shortest_path.h"
#include "util/parse.h"
#include "util/random.h"

namespace ugs {
namespace tools {

/// Prints "error: <message>" and exits 2 (the tools' usage-error code).
[[noreturn]] inline void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

/// Strictly parses a flag value that must be a positive integer.
inline std::int64_t PositiveFlag(const char* flag, const std::string& text) {
  std::int64_t value = ParseInt64OrExit(flag, text);
  if (value <= 0) Die(std::string(flag) + " must be positive");
  return value;
}

/// Fills request->pairs with `pairs` random distinct s/t pairs and
/// request->sources with `sources` random vertices, drawn from split
/// streams of request->seed (stream 1 for pairs, 2 for sources) so the
/// request's own seed stays dedicated to the estimator. Needs only the
/// vertex count, not the graph -- a remote client can size the draw from
/// the server's graph description.
inline void DrawRequestUnits(std::size_t num_vertices, std::int64_t pairs,
                             std::int64_t sources, QueryRequest* request) {
  if (num_vertices >= 2) {
    Rng pair_rng = SplitRng(request->seed, 1);
    request->pairs = SampleDistinctPairs(
        num_vertices, static_cast<std::size_t>(pairs), &pair_rng);
  }
  Rng source_rng = SplitRng(request->seed, 2);
  for (std::int64_t i = 0; i < sources; ++i) {
    request->sources.push_back(static_cast<VertexId>(
        source_rng.NextIndex(std::max<std::size_t>(num_vertices, 1))));
  }
}

}  // namespace tools
}  // namespace ugs

#endif  // UGS_TOOLS_TOOL_COMMON_H_
