// ugs_router: consistent-hash router in front of N ugs_serve shards,
// speaking the wire protocol (service/wire.h) on both sides -- clients
// point at the router instead of a shard and need no other change.
//
//   ugs_router --shard=<host:port> --shard=<host:port> ...
//              [--host=127.0.0.1] [--port=7470] [--workers=4]
//              [--replication=1] [--hot-graph=<id>:<r> ...]
//              [--race=1] [--race-verify] [--health-interval-ms=1000]
//              [--connect-retries=0] [--port-file=<path>]
//
// Every shard must serve the same graph directory contents; the ring
// only decides which shard a graph id *prefers* (session and cache
// locality). --replication spreads each graph over its first R ring
// replicas; --hot-graph overrides R per graph. --race=2 sends each
// query to two healthy replicas and answers with the first reply
// (responses are pure functions of (graph, request), so replicas are
// byte-interchangeable); --race-verify additionally waits for both and
// asserts they agree. Shard health is polled through the stats verb
// every --health-interval-ms; connect/IO failures fail over to the next
// ring candidate. The empty stats verb aggregates all shards under a
// {"router":...,"shards":[...]} schema. Semantics: docs/sharding.md.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "router/router.h"
#include "util/parse.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ugs_router --shard=<host:port> [--shard=<host:port> ...]\n"
      "  --host=<a>           bind address            (default 127.0.0.1)\n"
      "  --port=<p>           TCP port; 0 = ephemeral (default 7470)\n"
      "  --workers=<n>        forwarding threads      (default 4)\n"
      "  --replication=<r>    replicas per graph      (default 1)\n"
      "  --hot-graph=<id>:<r> per-graph replica override (repeatable)\n"
      "  --race=<n>           replicas raced per query; 1 = off\n"
      "  --race-verify        wait for both raced replies, assert equal\n"
      "  --health-interval-ms=<n>  shard poll period; 0 = no monitor\n"
      "  --connect-retries=<n> shard connect retries with backoff\n"
      "  --slow-query-ms=<n>  log one structured line per request slower\n"
      "                       than n ms; 0 = off (docs/observability.md)\n"
      "  --no-telemetry       skip per-request span recording (counters\n"
      "                       and the metrics exposition stay live)\n"
      "  --port-file=<path>   write the bound port after startup\n");
  std::exit(2);
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

/// "host:port" -> ShardAddress (host may be empty: default loopback).
ugs::ShardAddress ParseShard(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    Die("--shard needs the form <host>:<port>, got '" + text + "'");
  }
  ugs::ShardAddress addr;
  if (colon > 0) addr.host = text.substr(0, colon);
  addr.port = static_cast<int>(
      ugs::ParseInt64OrExit("--shard port", text.substr(colon + 1)));
  if (addr.port <= 0 || addr.port > 65535) {
    Die("--shard port must be in [1, 65535]");
  }
  return addr;
}

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  ugs::RouterOptions options;
  options.port = 7470;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--shard=", 0) == 0) {
      options.shards.push_back(ParseShard(arg.substr(8)));
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      options.port = static_cast<int>(
          ugs::ParseInt64OrExit("--port", arg.substr(7)));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = static_cast<int>(
          ugs::ParseInt64OrExit("--workers", arg.substr(10)));
    } else if (arg.rfind("--replication=", 0) == 0) {
      options.replication = static_cast<std::size_t>(
          ugs::ParseInt64OrExit("--replication", arg.substr(14)));
    } else if (arg.rfind("--hot-graph=", 0) == 0) {
      const std::string spec = arg.substr(12);
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        Die("--hot-graph needs the form <id>:<replicas>, got '" + spec + "'");
      }
      options.graph_replication[spec.substr(0, colon)] =
          static_cast<std::size_t>(ugs::ParseInt64OrExit(
              "--hot-graph replicas", spec.substr(colon + 1)));
    } else if (arg.rfind("--race=", 0) == 0) {
      options.race = static_cast<int>(
          ugs::ParseInt64OrExit("--race", arg.substr(7)));
    } else if (arg == "--race-verify") {
      options.race_verify = true;
    } else if (arg.rfind("--health-interval-ms=", 0) == 0) {
      options.health_interval_ms = static_cast<int>(
          ugs::ParseInt64OrExit("--health-interval-ms", arg.substr(21)));
    } else if (arg.rfind("--connect-retries=", 0) == 0) {
      options.connect.max_retries = static_cast<int>(
          ugs::ParseInt64OrExit("--connect-retries", arg.substr(18)));
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      options.telemetry.slow_query_ms = static_cast<int>(
          ugs::ParseInt64OrExit("--slow-query-ms", arg.substr(16)));
    } else if (arg == "--no-telemetry") {
      options.telemetry.enabled = false;
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
    } else {
      Usage();
    }
  }
  if (options.shards.empty()) Usage();
  if (options.port < 0 || options.port > 65535) {
    Die("--port must be in [0, 65535]");
  }
  if (options.num_workers <= 0) Die("--workers must be positive");
  if (options.replication < 1) Die("--replication must be >= 1");
  if (options.race < 1) Die("--race must be >= 1");
  if (options.health_interval_ms < 0 || options.connect.max_retries < 0 ||
      options.telemetry.slow_query_ms < 0) {
    Die("--health-interval-ms, --connect-retries, and --slow-query-ms must "
        "be >= 0");
  }

  ugs::Router router(options);
  ugs::Status started = router.Start();
  if (!started.ok()) Die(started.ToString());
  std::printf("ugs_router: listening on %s:%d (shards=%zu replication=%zu "
              "race=%d%s health-interval-ms=%d)\n",
              options.host.c_str(), router.port(), options.shards.size(),
              options.replication, options.race,
              options.race_verify ? " verify" : "",
              options.health_interval_ms);
  std::fflush(stdout);

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) Die("cannot write port file '" + port_file + "'");
    std::fprintf(f, "%d\n", router.port());
    std::fclose(f);
  }

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  std::signal(SIGPIPE, SIG_IGN);  // Shard hang-ups surface as EPIPE.

  while (g_shutdown == 0) {
    timespec nap{0, 50 * 1000 * 1000};  // 50 ms.
    nanosleep(&nap, nullptr);
  }
  std::printf("ugs_router: shutting down\n");
  router.Stop();
  std::printf("ugs_router: %s\n", router.StatsJson().c_str());
  return 0;
}
