// ugs_serve: long-lived TCP daemon serving uncertain-graph queries from a
// graph directory through the wire protocol (service/wire.h) and the
// multi-graph session registry (service/session_registry.h).
//
//   ugs_serve --dir=<graph dir> [--host=127.0.0.1] [--port=7471]
//             [--backend=epoll] [--workers=4] [--max-sessions=8]
//             [--max-bytes=0] [--cache-entries=0] [--cache-bytes=0]
//             [--cache-max-entry-bytes=0] [--engine-threads=0]
//             [--threads=0] [--port-file=<path>]
//
// Graph ids resolve to files in --dir ("g1" -> g1 or g1.txt). One
// reactor thread multiplexes every connection and --workers query
// threads drain the decoded requests (idle connections cost no worker;
// pipelined requests are answered in order). --backend accepts only
// "epoll"; the legacy blocking backend was removed one release after
// its deprecation, and unknown values are a typed CLI error.
// --cache-entries/--cache-bytes enable the exact result cache
// (responses are pure functions of (graph id, request), so hits replay
// byte-identical payloads). Responses are bit-identical to
// GraphSession::Run locally at any worker count, cache on or off.
// --port=0 binds an ephemeral port; --port-file writes the bound port
// (what the CI smoke and scripted callers use). SIGINT / SIGTERM shut
// down cleanly: in-flight requests finish, then the process exits 0.
// Tuning guide: docs/operations.md.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "service/server.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ugs_serve --dir=<graph dir>\n"
      "  --host=<a>          bind address             (default 127.0.0.1)\n"
      "  --port=<p>          TCP port; 0 = ephemeral  (default 7471)\n"
      "  --backend=<b>       epoll (the only backend) (default epoll)\n"
      "  --workers=<n>       query threads            (default 4)\n"
      "  --max-sessions=<n>  resident graph budget; 0 = unlimited\n"
      "                      (default 8, LRU eviction past it)\n"
      "  --max-bytes=<n>     resident memory budget; 0 = unlimited\n"
      "  --cache-entries=<n> result-cache entry budget; 0 = see below\n"
      "  --cache-bytes=<n>   result-cache byte budget; 0 = see below\n"
      "                      (both 0 disables the cache -- the default)\n"
      "  --cache-max-entry-bytes=<n> admission cap on one cached entry;\n"
      "                      0 = cache-bytes/8 (responses over the cap\n"
      "                      are served but never cached)\n"
      "  --engine-threads=<n> per-session engine pool; 0 = shared default\n"
      "  --threads=<n>       shared default pool size (env UGS_THREADS)\n"
      "  --slow-query-ms=<n> log one structured line per request slower\n"
      "                      than n ms; 0 = off (docs/observability.md)\n"
      "  --no-telemetry      skip per-request span recording (counters\n"
      "                      and the metrics exposition stay live)\n"
      "  --port-file=<path>  write the bound port after startup\n");
  std::exit(2);
}

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(2);
}

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string dir, host = "127.0.0.1", port_file, backend = "epoll";
  std::int64_t port = 7471, workers = 4, max_sessions = 8, max_bytes = 0;
  std::int64_t cache_entries = 0, cache_bytes = 0, cache_max_entry_bytes = 0;
  std::int64_t engine_threads = 0, threads = 0, slow_query_ms = 0;
  bool telemetry_enabled = true;
  if (const char* env = std::getenv("UGS_THREADS")) {
    threads = ugs::ParseInt64OrExit("UGS_THREADS", env);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--dir=", 6) == 0) {
      dir = arg + 6;
    } else if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      port = ugs::ParseInt64OrExit("--port", arg + 7);
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      workers = ugs::ParseInt64OrExit("--workers", arg + 10);
    } else if (std::strncmp(arg, "--max-sessions=", 15) == 0) {
      max_sessions = ugs::ParseInt64OrExit("--max-sessions", arg + 15);
    } else if (std::strncmp(arg, "--max-bytes=", 12) == 0) {
      max_bytes = ugs::ParseInt64OrExit("--max-bytes", arg + 12);
    } else if (std::strncmp(arg, "--backend=", 10) == 0) {
      backend = arg + 10;
    } else if (std::strncmp(arg, "--cache-entries=", 16) == 0) {
      cache_entries = ugs::ParseInt64OrExit("--cache-entries", arg + 16);
    } else if (std::strncmp(arg, "--cache-max-entry-bytes=", 24) == 0) {
      cache_max_entry_bytes =
          ugs::ParseInt64OrExit("--cache-max-entry-bytes", arg + 24);
    } else if (std::strncmp(arg, "--cache-bytes=", 14) == 0) {
      cache_bytes = ugs::ParseInt64OrExit("--cache-bytes", arg + 14);
    } else if (std::strncmp(arg, "--engine-threads=", 17) == 0) {
      engine_threads = ugs::ParseInt64OrExit("--engine-threads", arg + 17);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = ugs::ParseInt64OrExit("--threads", arg + 10);
    } else if (std::strncmp(arg, "--slow-query-ms=", 16) == 0) {
      slow_query_ms = ugs::ParseInt64OrExit("--slow-query-ms", arg + 16);
    } else if (std::strcmp(arg, "--no-telemetry") == 0) {
      telemetry_enabled = false;
    } else if (std::strncmp(arg, "--port-file=", 12) == 0) {
      port_file = arg + 12;
    } else {
      Usage();
    }
  }
  if (dir.empty()) Usage();
  if (port < 0 || port > 65535) Die("--port must be in [0, 65535]");
  if (workers <= 0) Die("--workers must be positive");
  if (max_sessions < 0 || max_bytes < 0 || cache_entries < 0 ||
      cache_bytes < 0 || cache_max_entry_bytes < 0 || engine_threads < 0 ||
      threads < 0 || slow_query_ms < 0) {
    Die("budgets, thread counts, and --slow-query-ms must be >= 0");
  }
  ugs::Status backend_ok = ugs::ValidateServerBackend(backend);
  if (!backend_ok.ok()) Die(backend_ok.message());
  ugs::ThreadPool::SetDefaultThreads(static_cast<int>(threads));

  ugs::ServerOptions options;
  options.host = host;
  options.port = static_cast<int>(port);
  options.num_workers = static_cast<int>(workers);
  options.cache.max_entries = static_cast<std::size_t>(cache_entries);
  options.cache.max_bytes = static_cast<std::size_t>(cache_bytes);
  options.cache.max_entry_bytes =
      static_cast<std::size_t>(cache_max_entry_bytes);
  options.registry.graph_dir = dir;
  options.registry.max_sessions = static_cast<std::size_t>(max_sessions);
  options.registry.max_resident_bytes = static_cast<std::size_t>(max_bytes);
  options.registry.session.engine.num_threads =
      static_cast<int>(engine_threads);
  options.telemetry.enabled = telemetry_enabled;
  options.telemetry.slow_query_ms = static_cast<int>(slow_query_ms);

  ugs::Server server(options);
  ugs::Status started = server.Start();
  if (!started.ok()) Die(started.ToString());
  std::printf("ugs_serve: listening on %s:%d (dir=%s backend=%s "
              "workers=%lld max-sessions=%lld max-bytes=%lld "
              "cache-entries=%lld cache-bytes=%lld)\n",
              host.c_str(), server.port(), dir.c_str(), backend.c_str(),
              static_cast<long long>(workers),
              static_cast<long long>(max_sessions),
              static_cast<long long>(max_bytes),
              static_cast<long long>(cache_entries),
              static_cast<long long>(cache_bytes));
  std::fflush(stdout);

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) Die("cannot write port file '" + port_file + "'");
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  struct sigaction action {};
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  std::signal(SIGPIPE, SIG_IGN);  // Peer hang-ups surface as EPIPE.

  // The workers own all the traffic; the main thread just waits for a
  // shutdown signal (poll-sleeping keeps the handler async-signal-safe:
  // it only flips a flag).
  while (g_shutdown == 0) {
    timespec nap{0, 50 * 1000 * 1000};  // 50 ms.
    nanosleep(&nap, nullptr);
  }
  std::printf("ugs_serve: shutting down\n");
  server.Stop();
  std::printf("ugs_serve: %s\n", server.StatsJson().c_str());
  return 0;
}
