// ugs_pack: convert uncertain-graph files between the text edge-list
// format and the binary mmap-able CSR format (.ugsc; graph/csr_format.h).
//
//   ugs_pack --in=<graph.txt> [--out=<graph.ugsc>] [--verify]
//   ugs_pack --unpack --in=<graph.ugsc> [--out=<graph.txt>]
//   ugs_pack --describe --in=<graph.ugsc>
//
// Packing writes a checksummed little-endian image the session registry
// can mmap in ~O(1); --verify reopens the written file via mmap and
// asserts the view is bit-identical to the in-memory graph. Unpacking
// emits the canonical text rendering, so `ugs_pack --unpack` piped
// through diff is the byte-level equivalence check between a .ugsc file
// and the text graph it came from. --describe prints the validated
// header (counts, section table, checksums) as one JSON line.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/csr_format.h"
#include "graph/graph_io.h"
#include "util/status.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: ugs_pack --in=<graph.txt> [--out=<graph.ugsc>] [--verify]\n"
      "       ugs_pack --unpack --in=<graph.ugsc> [--out=<graph.txt>]\n"
      "       ugs_pack --describe --in=<graph.ugsc>\n"
      "  --out defaults to the input path with its extension swapped\n"
      "  --verify: after packing, mmap the output and check it is\n"
      "            bit-identical to the parsed input graph\n");
  std::exit(2);
}

[[noreturn]] void DieStatus(const ugs::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

/// <path minus a trailing extension> + ext.
std::string SwapExtension(const std::string& path, const std::string& ext) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + ext;
  }
  return path.substr(0, dot) + ext;
}

/// Bit-exact equality between the packed view and the source graph.
bool ViewMatches(const ugs::UncertainGraph& a, const ugs::UncertainGraph& b) {
  const ugs::CsrArrays x = a.csr_arrays();
  const ugs::CsrArrays y = b.csr_arrays();
  auto same = [](const auto& s, const auto& t) {
    return s.size() == t.size() &&
           (s.empty() ||
            std::memcmp(s.data(), t.data(), s.size_bytes()) == 0);
  };
  return same(x.edges, y.edges) &&
         same(x.degree_offsets, y.degree_offsets) &&
         same(x.adjacency, y.adjacency) &&
         same(x.expected_degrees, y.expected_degrees);
}

void Describe(const ugs::CsrFileInfo& info) {
  std::printf("{\"version\":%u,\"flags\":%u,\"vertices\":%" PRIu64
              ",\"edges\":%" PRIu64 ",\"file_size\":%" PRIu64
              ",\"header_crc\":\"%08x\",\"sections\":[",
              info.version, info.flags, info.num_vertices, info.num_edges,
              info.file_size, info.header_crc);
  for (int s = 0; s < ugs::kCsrNumSections; ++s) {
    const ugs::CsrSectionInfo& sec = info.sections[s];
    std::printf("%s{\"name\":\"%s\",\"offset\":%" PRIu64
                ",\"length\":%" PRIu64 ",\"crc32\":\"%08x\"}",
                s == 0 ? "" : ",",
                ugs::CsrSectionName(static_cast<ugs::CsrSection>(s)),
                sec.offset, sec.length, sec.crc32);
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string in, out;
  bool unpack = false, describe = false, verify = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--in=", 5) == 0) {
      in = arg + 5;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out = arg + 6;
    } else if (std::strcmp(arg, "--unpack") == 0) {
      unpack = true;
    } else if (std::strcmp(arg, "--describe") == 0) {
      describe = true;
    } else if (std::strcmp(arg, "--verify") == 0) {
      verify = true;
    } else {
      Usage();
    }
  }
  if (in.empty() || (unpack && describe)) Usage();

  if (describe) {
    ugs::Result<ugs::MappedGraph> mapped = ugs::MappedGraph::Open(in);
    if (!mapped.ok()) DieStatus(mapped.status());
    Describe(mapped->info());
    return 0;
  }

  if (unpack) {
    if (out.empty()) out = SwapExtension(in, ".txt");
    ugs::Result<ugs::MappedGraph> mapped = ugs::MappedGraph::Open(in);
    if (!mapped.ok()) DieStatus(mapped.status());
    ugs::Status saved = ugs::SaveEdgeList(mapped->graph(), out);
    if (!saved.ok()) DieStatus(saved);
    std::printf("unpacked %s -> %s (%zu vertices, %zu edges)\n", in.c_str(),
                out.c_str(), mapped->graph().num_vertices(),
                mapped->graph().num_edges());
    return 0;
  }

  if (out.empty()) out = SwapExtension(in, ugs::kCsrExtension);
  ugs::Result<ugs::UncertainGraph> graph = ugs::LoadEdgeList(in);
  if (!graph.ok()) DieStatus(graph.status());
  ugs::Status written = ugs::WriteCsrGraph(*graph, out);
  if (!written.ok()) DieStatus(written);
  std::printf("packed %s -> %s (%zu vertices, %zu edges)\n", in.c_str(),
              out.c_str(), graph->num_vertices(), graph->num_edges());
  if (verify) {
    ugs::Result<ugs::MappedGraph> reopened = ugs::MappedGraph::Open(out);
    if (!reopened.ok()) DieStatus(reopened.status());
    if (!ViewMatches(reopened->graph(), *graph)) {
      std::fprintf(stderr,
                   "error: verification failed: mmap view of '%s' is not "
                   "bit-identical to the parsed input\n",
                   out.c_str());
      return 1;
    }
    std::printf("verified: mmap view bit-identical to parsed input (%zu "
                "mapped bytes)\n",
                reopened->mapped_bytes());
  }
  return 0;
}
